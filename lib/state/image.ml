type heap_block = { elem_ty : Dr_lang.Ast.ty; cells : Value.t array }

type record = { location : int; values : Value.t list }

type t = {
  source_module : string;
  records : record list;
  heap : (int * heap_block) list;
  mutable digest_memo : int64 option;
}

let make ~source_module ~records ~heap =
  { source_module; records; heap; digest_memo = None }

let empty ~source_module =
  { source_module; records = []; heap = []; digest_memo = None }

(* [{ t with ... }] would copy a stale memo along with the fields; every
   structural update must reset it. *)
let push_record t record =
  { t with records = t.records @ [ record ]; digest_memo = None }

let pop_record t =
  match List.rev t.records with
  | [] -> None
  | last :: rev_rest ->
    Some (last, { t with records = List.rev rev_rest; digest_memo = None })

let depth t = List.length t.records

let equal_block a b =
  Dr_lang.Ast.equal_ty a.elem_ty b.elem_ty
  && Array.length a.cells = Array.length b.cells
  && Array.for_all2 Value.equal a.cells b.cells

let equal_record a b =
  a.location = b.location
  && List.length a.values = List.length b.values
  && List.for_all2 Value.equal a.values b.values

let equal a b =
  String.equal a.source_module b.source_module
  && List.length a.records = List.length b.records
  && List.for_all2 equal_record a.records b.records
  && List.length a.heap = List.length b.heap
  && List.for_all2
       (fun (i, ba) (j, bb) -> i = j && equal_block ba bb)
       a.heap b.heap

let pp ppf t =
  Fmt.pf ppf "@[<v>image of %s (%d records, %d heap blocks)" t.source_module
    (List.length t.records) (List.length t.heap);
  List.iteri
    (fun i r ->
      Fmt.pf ppf "@,  record %d: location=%d [%a]" i r.location
        (Fmt.list ~sep:(Fmt.any ", ") Value.pp)
        r.values)
    t.records;
  List.iter
    (fun (id, block) ->
      Fmt.pf ppf "@,  block #%d: %s[%d]" id
        (Dr_lang.Pretty.ty_to_string block.elem_ty)
        (Array.length block.cells))
    t.heap;
  Fmt.pf ppf "@]"

(* Structural 64-bit digest (FNV-1a style mixing) over everything
   [equal] compares: the module name, each record's location and
   values, and each heap block's id, element type and cells. Equal
   images digest equally; a restore can therefore verify that the image
   it feeds is the image that was captured ([Bus.deposit_state
   ?expect]). This is an end-to-end check above the container's CRC-32:
   it survives encode/translate/decode across architectures. *)
let compute_digest t =
  let h = ref 0xcbf29ce484222325L in
  let mix v = h := Int64.mul (Int64.logxor !h v) 0x100000001b3L in
  let mix_int i = mix (Int64.of_int i) in
  let mix_string s =
    mix_int (String.length s);
    String.iter (fun c -> mix (Int64.of_int (Char.code c))) s
  in
  let mix_value = function
    | Value.Vint i ->
      mix_int 1;
      mix_int i
    | Value.Vfloat f ->
      mix_int 2;
      mix (Int64.bits_of_float f)
    | Value.Vbool b ->
      mix_int 3;
      mix_int (if b then 1 else 0)
    | Value.Vstr s ->
      mix_int 4;
      mix_string s
    | Value.Varr block ->
      mix_int 5;
      mix_int block
    | Value.Vptr (block, off) ->
      mix_int 6;
      mix_int block;
      mix_int off
    | Value.Vnull -> mix_int 7
  in
  let rec mix_ty = function
    | Dr_lang.Ast.Tint -> mix_int 1
    | Dr_lang.Ast.Tfloat -> mix_int 2
    | Dr_lang.Ast.Tbool -> mix_int 3
    | Dr_lang.Ast.Tstr -> mix_int 4
    | Dr_lang.Ast.Tarr ty ->
      mix_int 5;
      mix_ty ty
    | Dr_lang.Ast.Tptr ty ->
      mix_int 6;
      mix_ty ty
  in
  mix_string t.source_module;
  mix_int (List.length t.records);
  List.iter
    (fun r ->
      mix_int r.location;
      mix_int (List.length r.values);
      List.iter mix_value r.values)
    t.records;
  mix_int (List.length t.heap);
  List.iter
    (fun (id, block) ->
      mix_int id;
      mix_ty block.elem_ty;
      mix_int (Array.length block.cells);
      Array.iter mix_value block.cells)
    t.heap;
  !h

(* Memoised: the deposit path re-checks the digest of an image whose
   digest was already computed at capture/translate time; records and
   heap are never mutated after construction (feed/clone copy cells), so
   caching in the handle is sound. *)
let digest t =
  match t.digest_memo with
  | Some d -> d
  | None ->
    let d = compute_digest t in
    t.digest_memo <- Some d;
    d

let value_size = function
  | Value.Vint _ | Value.Vfloat _ | Value.Vbool _ -> 8
  | Value.Vstr s -> 8 + String.length s
  | Value.Varr _ -> 8
  | Value.Vptr _ -> 16
  | Value.Vnull -> 8

let byte_size t =
  let record_size r =
    8 + List.fold_left (fun acc v -> acc + value_size v) 0 r.values
  in
  let block_size (_, b) =
    16 + Array.fold_left (fun acc v -> acc + value_size v) 0 b.cells
  in
  List.fold_left (fun acc r -> acc + record_size r) 0 t.records
  + List.fold_left (fun acc b -> acc + block_size b) 0 t.heap

let gather_blocks ~lookup roots =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec visit_value v =
    match v with
    | Value.Varr block | Value.Vptr (block, _) -> visit_block block
    | Value.Vint _ | Value.Vfloat _ | Value.Vbool _ | Value.Vstr _ | Value.Vnull
      ->
      ()
  and visit_block id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match lookup id with
      | None -> ()
      | Some block ->
        acc := (id, block) :: !acc;
        Array.iter visit_value block.cells
    end
  in
  List.iter visit_value roots;
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

(* ------------------------------------------------------------- deltas *)

(* A delta image: the dirtied subset of a capture relative to a base
   snapshot taken by the pre-copy phase. Slots are addressed by (record
   index, value index) against the base's record layout; heap blocks are
   either shipped whole ([d_heap_new]: dirtied since the base, or absent
   from it) or pulled from the base by id ([d_heap_keep]). Soundness
   rests on the machine's write barrier: a slot whose generation counter
   did not advance past the base generation still holds its base value,
   so clean slots need no value comparison — the qcheck differential
   (delta-apply ≡ full capture) pins this. *)

type delta = {
  d_source_module : string;
  d_base_digest : int64;
  d_record_count : int;
  d_slots : (int * int * Value.t) list;
  d_heap_new : (int * heap_block) list;
  d_heap_keep : int list;
}

let diff ~base ~masks ~heap_dirty (final : t) =
  let structural_ok =
    String.equal base.source_module final.source_module
    && List.length base.records = List.length final.records
    && List.length masks = List.length final.records
    && List.for_all2
         (fun (b : record) (f : record) ->
           b.location = f.location
           && List.length b.values = List.length f.values)
         base.records final.records
    && List.for_all2
         (fun mask (f : record) -> Array.length mask = List.length f.values)
         masks final.records
  in
  if not structural_ok then None
  else begin
    let slots = ref [] in
    List.iteri
      (fun ri (mask, (f : record)) ->
        List.iteri
          (fun vi v -> if mask.(vi) then slots := (ri, vi, v) :: !slots)
          f.values)
      (List.combine masks final.records);
    let heap_new = ref [] and heap_keep = ref [] in
    List.iter
      (fun (id, block) ->
        if heap_dirty id || not (List.mem_assoc id base.heap) then
          heap_new := (id, block) :: !heap_new
        else heap_keep := id :: !heap_keep)
      final.heap;
    Some
      { d_source_module = final.source_module;
        d_base_digest = digest base;
        d_record_count = List.length final.records;
        d_slots = List.rev !slots;
        d_heap_new = List.rev !heap_new;
        d_heap_keep = List.rev !heap_keep }
  end

let apply_delta ~base (d : delta) =
  if
    (not (Int64.equal (digest base) d.d_base_digest))
    || (not (String.equal base.source_module d.d_source_module))
    || List.length base.records <> d.d_record_count
  then None
  else begin
    let records = Array.of_list base.records in
    let ok = ref true in
    let patched = Array.map (fun (r : record) -> Array.of_list r.values) records in
    List.iter
      (fun (ri, vi, v) ->
        if ri < 0 || ri >= Array.length patched then ok := false
        else
          let values = patched.(ri) in
          if vi < 0 || vi >= Array.length values then ok := false
          else values.(vi) <- v)
      d.d_slots;
    let keep =
      List.filter_map
        (fun id ->
          match List.assoc_opt id base.heap with
          | Some block -> Some (id, block)
          | None ->
            ok := false;
            None)
        d.d_heap_keep
    in
    if not !ok then None
    else begin
      let records =
        List.mapi
          (fun ri (r : record) ->
            { r with values = Array.to_list patched.(ri) })
          (Array.to_list records)
      in
      let heap =
        List.sort
          (fun (a, _) (b, _) -> compare a b)
          (d.d_heap_new @ keep)
      in
      Some (make ~source_module:d.d_source_module ~records ~heap)
    end
  end

let delta_byte_size (d : delta) =
  let slot_size (_, _, v) = 8 + value_size v in
  let block_size (_, b) =
    16 + Array.fold_left (fun acc v -> acc + value_size v) 0 b.cells
  in
  8 (* base digest *)
  + List.fold_left (fun acc s -> acc + slot_size s) 0 d.d_slots
  + List.fold_left (fun acc b -> acc + block_size b) 0 d.d_heap_new
  + (8 * List.length d.d_heap_keep)
