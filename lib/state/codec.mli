(** Serialisation of state images.

    Two layers, mirroring the paper's §1.2:

    - the {b abstract} format is canonical and machine-independent
      (big-endian, 64-bit, tagged);
    - a {b native} format per {!Arch.t} is what a module "really" divulges
      on its host: byte order and word width follow the architecture.

    A migration from host A to host B translates
    native(A) → abstract → native(B); {!Native.translate} performs the
    round trip and reports heterogeneity errors (e.g. an integer that does
    not fit the destination word).

    Container format: version 2 ("DRIMG2" magic, version byte, body,
    CRC-32 trailer over everything before it, big-endian). A corrupted
    byte anywhere fails decode with ["checksum mismatch"] instead of
    restoring garbage. Version 3 additionally carries an opaque
    metadata string (e.g. a metrics snapshot) between the version byte
    and the body; it is emitted only when [?meta] is passed, so
    meta-less images stay byte-identical to version 2. Version 1
    ("DRIMG1", no version byte or checksum) is still accepted on
    decode. *)

exception Malformed of string

val encode_abstract : ?meta:string -> Image.t -> bytes
(** [?meta] attaches an opaque string (covered by the checksum) and
    switches the container to version 3. *)

val decode_abstract : bytes -> (Image.t, string) result
(** Accepts versions 1–3; any attached metadata is dropped. *)

val decode_abstract_full : bytes -> (Image.t * string option, string) result
(** Like {!decode_abstract}, also returning the version-3 metadata
    ([None] for versions 1 and 2). *)

(** Abstract-layout wire primitives (big-endian, 64-bit, the same
    encoding the canonical image body uses), exposed for other durable
    formats — notably the write-ahead log's journal records — so every
    on-disk artefact shares one integer/string/value encoding. *)
module Wire : sig
  val write_int : Buffer.t -> int -> unit
  val read_int : Bin_util.reader -> int

  val write_string : Buffer.t -> string -> unit
  val read_string : Bin_util.reader -> string

  val write_value : Buffer.t -> Value.t -> unit
  val read_value : Bin_util.reader -> Value.t

  val guarded : (unit -> 'a) -> ('a, string) result
  (** Run a decoder, mapping {!Malformed} and truncation to [Error]. *)
end

module Native : sig
  val encode : Arch.t -> Image.t -> (bytes, string) result
  (** Fails when a captured integer exceeds the architecture word. *)

  val decode : Arch.t -> bytes -> (Image.t, string) result

  val translate : src:Arch.t -> dst:Arch.t -> bytes -> (bytes, string) result
  (** native(src) bytes → native(dst) bytes, through the abstract image. *)

  val same_layout : Arch.t -> Arch.t -> bool
  (** Whether the two architectures share byte order and word width —
      i.e. their native containers are byte-identical. *)

  val recode : src:Arch.t -> dst:Arch.t -> bytes -> (bytes, string) result
  (** Zero-copy {!translate}: when {!same_layout} holds the input bytes
      are returned unchanged (no decode, no re-encode); otherwise falls
      back to the authoritative translate path. The receiver's decode
      still verifies the CRC, so corruption cannot ride the fast path. *)
end

(** {1 Delta containers}

    "DRIMGD1": an {!Image.delta} in the abstract layout (magic, version
    byte, body, CRC-32 trailer — same integrity envelope as "DRIMG2").
    The base image is referenced by digest; resolving it is the
    caller's job. *)

val encode_delta : Image.delta -> bytes

val decode_delta : bytes -> (Image.delta, string) result
