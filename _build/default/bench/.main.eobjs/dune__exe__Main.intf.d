bench/main.mli:
