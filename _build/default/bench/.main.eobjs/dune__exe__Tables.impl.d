bench/tables.ml: Bytes Dr_analysis Dr_baselines Dr_bus Dr_interp Dr_lang Dr_mil Dr_opt Dr_sim Dr_state Dr_transform Dr_workloads Dynrecon Fmt List Option Printf String
