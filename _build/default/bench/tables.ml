(* Experiment harness: regenerates every figure of the paper (F1–F8),
   measures every quantitative claim of its Discussion section and every
   baseline comparison (D1–D8), and runs three ablations (A1 dummy
   arguments, A2 liveness trimming, A3 code-motion inhibition).
   See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for the
   paper-vs-measured record. *)

module Bus = Dr_bus.Bus
module Machine = Dr_interp.Machine
module I = Dr_transform.Instrument
module Image = Dr_state.Image
module Value = Dr_state.Value
module Synthetic = Dr_workloads.Synthetic
module Monitor = Dr_workloads.Monitor

(* ------------------------------------------------------------ helpers *)

let section id title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s — %s\n" id title;
  Printf.printf "==============================================================\n"

let print_table headers rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      cells;
    print_newline ()
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

(* A machine driven by a scripted io; returns (machine, divulged ref,
   printed ref). *)
let standalone ?status_attr program =
  let divulged = ref [] in
  let printed = ref [] in
  let io =
    { (Dr_interp.Io_intf.null ()) with
      io_print = (fun line -> printed := line :: !printed);
      io_encode = (fun image -> divulged := image :: !divulged) }
  in
  (Machine.create ?status_attr ~io program, divulged, printed)

let prepare_exn ?options program points =
  match I.prepare ?options program ~points with
  | Ok prepared -> prepared
  | Error e -> failwith ("prepare: " ^ e)

let pct x = Printf.sprintf "%.2f%%" x

(* ================================================================ F1 *)

let fig1_monitor () =
  section "F1 (Fig. 1)" "The Monitor example: move compute to another machine";
  let system = Monitor.load () in
  let bus = Monitor.start system in
  Bus.run ~until:40.0 bus;
  let hosts_row () =
    List.map
      (fun inst ->
        [ inst;
          Option.value ~default:"?" (Bus.instance_host bus ~instance:inst) ])
      (Bus.instances bus)
  in
  print_endline "starting configuration (Fig. 1 left):";
  print_table [ "instance"; "host" ] (hosts_row ());
  let displayed () =
    List.filter_map Monitor.parse_displayed (Bus.outputs bus ~instance:"display")
  in
  let before = List.length (displayed ()) in
  (match
     Dynrecon.System.migrate bus ~instance:"compute" ~new_instance:"compute'"
       ~new_host:"hostB"
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  let migration_time = Bus.now bus in
  Bus.run ~until:(Bus.now bus +. 60.0) bus;
  print_endline "\nending configuration (Fig. 1 right):";
  print_table [ "instance"; "host" ] (hosts_row ());
  let avgs = displayed () in
  Printf.printf
    "\naverages before move: %d   after: %d   all correct: %b   (move at t=%.2f)\n"
    before
    (List.length avgs - before)
    (Monitor.averages_plausible ~n:4 (List.map snd avgs))
    migration_time

(* ================================================================ F2 *)

let fig2_mil () =
  section "F2 (Fig. 2)" "Configuration specification: parse, validate, round-trip";
  let config = Dr_mil.Mil_parser.parse_config Monitor.mil in
  (match Dr_mil.Validate.validate config with
  | Ok () -> ()
  | Error es -> failwith (String.concat "; " es));
  let printed = Dr_mil.Mil_pretty.config_to_string config in
  let fixpoint =
    String.equal printed
      (Dr_mil.Mil_pretty.config_to_string (Dr_mil.Mil_parser.parse_config printed))
  in
  print_table
    [ "module"; "interfaces"; "reconfiguration points" ]
    (List.map
       (fun (m : Dr_mil.Spec.module_spec) ->
         [ m.ms_name;
           string_of_int (List.length m.ifaces);
           String.concat ", "
             (List.map (fun p -> p.Dr_mil.Spec.rp_label) m.points) ])
       config.modules);
  let app = List.hd config.apps in
  Printf.printf
    "\napplication %s: %d instances, %d bindings; printer fixpoint: %b\n"
    app.app_name (List.length app.instances) (List.length app.binds) fixpoint

(* ============================================================ F3 / F4 *)

let count_blocks program =
  let captures = ref 0 and points = ref 0 and restores = ref 0 in
  List.iter
    (fun (p : Dr_lang.Ast.proc) ->
      Dr_lang.Ast.iter_stmts
        (fun s ->
          match s.kind with
          | Dr_lang.Ast.If (Var "mh_capturestack", _, []) -> incr captures
          | Dr_lang.Ast.If (Var "mh_reconfig", _, []) -> incr points
          | Dr_lang.Ast.If (Var "mh_restoring", _, []) -> incr restores
          | _ -> ())
        p.body)
    program.Dr_lang.Ast.procs;
  (!captures, !points, !restores)

let fig34_transform () =
  section "F3/F4 (Figs. 3–4)" "Automatic module preparation: compute before/after";
  let original = Dr_lang.Parser.parse_program Monitor.compute_source in
  let prepared =
    prepare_exn original [ { I.pt_proc = "compute"; pt_label = "R"; pt_vars = None } ]
  in
  let loc program =
    List.length
      (String.split_on_char '\n' (Dr_lang.Pretty.program_to_string program))
  in
  let captures, points, restores = count_blocks prepared.I.prepared_program in
  print_table
    [ "property"; "original (Fig. 3)"; "prepared (Fig. 4)" ]
    [ [ "source lines"; string_of_int (loc original);
        string_of_int (loc prepared.I.prepared_program) ];
      [ "call-edge capture blocks"; "0"; string_of_int captures ];
      [ "point capture blocks"; "0"; string_of_int points ];
      [ "restore blocks"; "0"; string_of_int restores ];
      [ "flag globals"; "0"; string_of_int (List.length I.flag_globals) ] ];
  let reparsed =
    Dr_lang.Parser.parse_program
      (Dr_lang.Pretty.program_to_string prepared.I.prepared_program)
  in
  Printf.printf
    "\nprepared source re-parses equal: %b; typechecks: %b\n"
    (Dr_lang.Ast.equal_program prepared.I.prepared_program reparsed)
    (Dr_lang.Typecheck.check reparsed = Ok ())

(* ================================================================ F5 *)

let fig5_script () =
  section "F5 (Fig. 5)" "Replacement reconfiguration script: event trace";
  let system = Monitor.load () in
  let bus = Monitor.start system in
  Bus.run ~until:25.0 bus;
  (match
     Dynrecon.System.replace bus ~instance:"compute" ~new_instance:"compute'" ()
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  let interesting =
    [ "script"; "signal"; "state"; "bind"; "queue"; "lifecycle" ]
  in
  print_table [ "t"; "event"; "detail" ]
    (List.filter_map
       (fun (e : Dr_sim.Trace.entry) ->
         if List.mem e.category interesting && e.time > 0.0 then
           Some [ Printf.sprintf "%.2f" e.time; e.category; e.detail ]
         else None)
       (Dr_sim.Trace.entries (Bus.trace bus)))

(* ================================================================ F6 *)

let fig6_graph () =
  section "F6 (Fig. 6)" "Static call graph and reconfiguration graph";
  let program =
    Dr_lang.Parser.parse_program
      {|
module sample;

proc c() { }

proc a() {
  R1: skip;
  c();
}

proc b() {
  skip;
  R2: skip;
}

proc main() {
  a();
  c();
  b();
  a();
}
|}
  in
  let cg = Dr_analysis.Callgraph.build program in
  print_endline "static call graph edges:";
  print_table [ "caller"; "callee"; "line" ]
    (List.map
       (fun (s : Dr_analysis.Callgraph.site) ->
         [ s.caller; s.callee; string_of_int s.line ])
       (Dr_analysis.Callgraph.sites cg));
  match
    Dr_analysis.Reconfig_graph.build program ~points:[ ("a", "R1"); ("b", "R2") ]
  with
  | Error e -> failwith e
  | Ok rg ->
    Printf.printf "\nrelevant procedures: %s (c is excluded)\n"
      (String.concat ", " rg.relevant);
    print_endline "reconfiguration graph edges (i, Si):";
    print_table [ "edge"; "from"; "to"; "statement" ]
      (List.map
         (function
           | Dr_analysis.Reconfig_graph.Call_edge { index; src; callee; line; _ } ->
             [ string_of_int index; src; callee; "S" ^ string_of_int line ]
           | Dr_analysis.Reconfig_graph.Point_edge { index; src; rlabel; line } ->
             [ string_of_int index; src; "reconfig"; rlabel ^ "@S" ^ string_of_int line ])
         rg.edges)

(* ============================================================ F7 / F8 *)

let fig78_blocks () =
  section "F7/F8 (Figs. 7–8)" "Generated capture and restore blocks";
  let original = Dr_lang.Parser.parse_program Monitor.compute_source in
  let prepared =
    prepare_exn original [ { I.pt_proc = "compute"; pt_label = "R"; pt_vars = None } ]
  in
  let compute =
    Option.get (Dr_lang.Ast.find_proc prepared.I.prepared_program "compute")
  in
  let shown = ref 0 in
  print_endline "generated blocks in procedure compute:\n";
  Dr_lang.Ast.iter_stmts
    (fun s ->
      match s.kind with
      | Dr_lang.Ast.If ((Var "mh_capturestack" | Var "mh_reconfig" | Var "mh_restoring"), _, [])
        when !shown < 3 ->
        incr shown;
        print_endline (Dr_lang.Pretty.stmt_to_string s);
        print_newline ()
      | _ -> ())
    compute.body

(* ================================================================ D1 *)

let run_to_halt_count program =
  let m, _, _ = standalone program in
  Machine.run ~max_steps:100_000_000 m;
  assert (Machine.status m = Machine.Halted);
  Machine.instr_count m

let d1_flag_overhead () =
  section "D1 (§4)"
    "Run-time cost of preparation: flag tests only (overhead vs placement)";
  let rounds = 200 and inner = 50 in
  let original = Synthetic.hotloop ~rounds ~inner in
  let base = run_to_halt_count original in
  let rows =
    List.map
      (fun (name, placement) ->
        let prepared = prepare_exn original (Synthetic.hotloop_points placement) in
        let instrs = run_to_halt_count prepared.I.prepared_program in
        [ name; string_of_int base; string_of_int instrs;
          pct (100.0 *. float_of_int (instrs - base) /. float_of_int base) ])
      [ ("inner loop (hot)", `Inner); ("outer loop", `Outer);
        ("rare procedure", `Rare) ]
  in
  print_table
    [ "reconfiguration point"; "original instrs"; "prepared instrs"; "overhead" ]
    rows;
  print_endline
    "\n(claim: the run-time cost is merely that of periodically testing the\n\
    \ flags; it scales with how often the chosen point is executed)"

(* ================================================================ D2 *)

let d2_vs_checkpointing () =
  section "D2 (§4)"
    "Ours vs checkpointing: steady-state cost and cost at reconfiguration";
  let rounds = 200 and inner = 50 in
  let original = Synthetic.hotloop ~rounds ~inner in
  let base = run_to_halt_count original in
  let rows = ref [] in
  List.iter
    (fun interval ->
      let sio = Dr_interp.Io_intf.null () in
      let cp =
        Dr_baselines.Checkpoint.create ~interval ~io:sio original
      in
      Dr_baselines.Checkpoint.run cp ~max_steps:100_000_000;
      let stats = Dr_baselines.Checkpoint.stats cp in
      rows :=
        [ Printf.sprintf "checkpoint every %d" interval;
          Printf.sprintf "%.1f bytes/kinstr"
            (1000.0
            *. float_of_int stats.snapshot_bytes_total
            /. float_of_int stats.instructions_run);
          Printf.sprintf "%d snapshots" stats.checkpoints_taken;
          Printf.sprintf "up to %d instrs" interval ]
        :: !rows)
    [ 100; 500; 2000; 10000 ];
  (* ours: instrumented at the outer loop; one capture at reconfig *)
  let prepared = prepare_exn original (Synthetic.hotloop_points `Outer) in
  let instrs = run_to_halt_count prepared.I.prepared_program in
  let m, divulged, _ = standalone prepared.I.prepared_program in
  Machine.run ~max_steps:3000 m;
  Machine.deliver_signal m;
  let at_signal = Machine.instr_count m in
  Machine.run ~max_steps:100_000_000 m;
  let capture_cost = Machine.instr_count m - at_signal in
  let image_bytes =
    match !divulged with
    | [ image ] -> Image.byte_size image
    | _ -> 0
  in
  let ours_row =
    [ "prepared module (ours)";
      Printf.sprintf "%.1f extra instrs/kinstr"
        (1000.0 *. float_of_int (instrs - base) /. float_of_int base);
      Printf.sprintf "1 capture: %d instrs, %d bytes" capture_cost image_bytes;
      "none" ]
  in
  print_table
    [ "approach"; "steady-state cost"; "cost at reconfiguration"; "lost work" ]
    (List.rev (ours_row :: !rows));
  print_endline
    "\n(claim: ours pays only flag tests until a reconfiguration is requested;\n\
    \ checkpointing pays state-copy costs at regular intervals forever and\n\
    \ still loses the work since the last checkpoint)"

(* ================================================================ D3 *)

let d3_reconfig_delay () =
  section "D3 (§4)"
    "Reconfiguration delay vs placement of the reconfiguration point";
  let rounds = 120 and inner = 60 in
  let original = Synthetic.hotloop ~rounds ~inner in
  let offsets = [ 0; 500; 1500; 3000; 5000; 8000; 11000; 14000 ] in
  let rows =
    List.map
      (fun (name, placement) ->
        let prepared = prepare_exn original (Synthetic.hotloop_points placement) in
        let delays =
          List.filter_map
            (fun offset ->
              let m, divulged, _ = standalone prepared.I.prepared_program in
              Machine.run ~max_steps:offset m;
              if Machine.status m <> Machine.Ready then None
              else begin
                Machine.deliver_signal m;
                let at_signal = Machine.instr_count m in
                Machine.run ~max_steps:100_000_000 m;
                match !divulged with
                | [ _ ] -> Some (Machine.instr_count m - at_signal)
                | _ -> None (* finished before reaching a point *)
              end)
            offsets
        in
        let n = List.length delays in
        let mean =
          if n = 0 then 0.0
          else float_of_int (List.fold_left ( + ) 0 delays) /. float_of_int n
        in
        [ name;
          string_of_int n;
          (if n = 0 then "-" else string_of_int (List.fold_left min max_int delays));
          (if n = 0 then "-" else Printf.sprintf "%.0f" mean);
          (if n = 0 then "-" else string_of_int (List.fold_left max 0 delays)) ])
      [ ("inner loop (hot)", `Inner); ("outer loop", `Outer);
        ("rare procedure", `Rare) ]
  in
  print_table
    [ "placement"; "captures"; "min delay"; "mean delay"; "max delay" ]
    rows;
  print_endline
    "\n(delays in instructions from signal to divulged state; frequently\n\
    \ executed points respond faster, as §4 predicts)"

(* ================================================================ D4 *)

let d4_depth_sweep () =
  section "D4" "Capture/restore cost vs activation-record stack depth";
  let rows =
    List.map
      (fun depth ->
        let prepared =
          prepare_exn (Synthetic.deeprec ~depth) Synthetic.deeprec_points
        in
        let program = prepared.I.prepared_program in
        let m, divulged, _ = standalone program in
        Machine.run ~max_steps:100_000_000 m;
        Machine.deliver_signal m;
        Machine.set_ready m;
        let at_signal = Machine.instr_count m in
        Machine.run ~max_steps:100_000_000 m;
        let capture = Machine.instr_count m - at_signal in
        let image = List.hd !divulged in
        let bytes = Bytes.length (Dr_state.Codec.encode_abstract image) in
        let clone, _, _ = standalone program in
        Machine.feed_image clone image;
        Machine.run ~max_steps:100_000_000 clone;
        let restore = Machine.instr_count clone in
        [ string_of_int depth;
          string_of_int (Image.depth image);
          string_of_int capture;
          string_of_int restore;
          string_of_int bytes ])
      [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]
  in
  print_table
    [ "recursion depth"; "records"; "capture instrs"; "restore instrs";
      "image bytes (abstract)" ]
    rows;
  print_endline "\n(all three scale linearly with stack depth)"

let d4b_heap_sweep () =
  section "D4b" "Image size vs heap state (automatic heap-block capture)";
  let rows =
    List.map
      (fun cells ->
        let source =
          Printf.sprintf
            {|
module heapy;

var table: int[];

proc main() {
  var i: int;
  mh_init();
  table = alloc_int(%d);
  i = 0;
  while (i < %d) {
    table[i] = i * 3;
    i = i + 1;
  }
  while (true) {
    R: sleep(1);
  }
}
|}
            cells cells
        in
        let prepared =
          prepare_exn
            (Dr_lang.Parser.parse_program source)
            [ { I.pt_proc = "main"; pt_label = "R"; pt_vars = None } ]
        in
        let m, divulged, _ = standalone prepared.I.prepared_program in
        Machine.run ~max_steps:100_000_000 m;
        Machine.deliver_signal m;
        Machine.set_ready m;
        Machine.run ~max_steps:100_000_000 m;
        let image = List.hd !divulged in
        [ string_of_int cells;
          string_of_int (List.length image.Image.heap);
          string_of_int (Bytes.length (Dr_state.Codec.encode_abstract image)) ])
      [ 16; 64; 256; 1024; 4096 ]
  in
  print_table [ "heap cells"; "captured blocks"; "abstract bytes" ] rows;
  print_endline
    "\n(frame-capture instruction cost is independent of heap size — blocks\n\
    \ are gathered by reachability at encode time, so heap cost is pure\n\
    \ state volume, visible in the image bytes; the paper leaves heap\n\
    \ capture to the programmer, we automate it for reachable blocks)"

(* ================================================================ D5 *)

let d5_vs_proc_update () =
  section "D5 (§4 / [4])"
    "Procedure-level update (Frieder & Segal) vs statement-level points";
  let iterations = 2000 in
  let baseline change =
    let old_program = Synthetic.layered ~iterations in
    let new_program = Synthetic.layered_variant ~iterations ~change in
    let io = Dr_interp.Io_intf.null () in
    let machine = Machine.create ~io old_program in
    (* request the update while the program is already running *)
    Machine.run ~max_steps:25 machine;
    let updater =
      Dr_baselines.Proc_update.create ~machine ~old_program ~new_program
    in
    let progress = Dr_baselines.Proc_update.run updater ~max_steps:100_000_000 in
    (progress, Machine.status machine)
  in
  (* ours: delay from signal to capture, independent of what changed *)
  let prepared =
    prepare_exn (Synthetic.layered_pointed ~iterations) Synthetic.layered_points
  in
  let ours_delay =
    let m, divulged, _ = standalone prepared.I.prepared_program in
    Machine.run ~max_steps:500 m;
    Machine.deliver_signal m;
    let at_signal = Machine.instr_count m in
    Machine.run ~max_steps:100_000_000 m;
    match !divulged with
    | [ _ ] -> Machine.instr_count m - at_signal
    | _ -> -1
  in
  let rows =
    List.map
      (fun (name, change) ->
        let progress, status = baseline change in
        [ name;
          string_of_int progress.Dr_baselines.Proc_update.steps_run;
          (if status = Machine.Halted then "yes (program over)" else "no");
          string_of_int ours_delay ])
      [ ("leaf procedure", `Leaf); ("middle procedure", `Mid);
        ("main procedure", `Main) ]
  in
  print_table
    [ "changed procedure"; "baseline: instrs to update";
      "waited for termination?"; "ours: instrs to capture" ]
    rows;
  print_endline
    "\n(claim: bottom-up procedure replacement is quick for leaf changes but\n\
    \ a changed main cannot be updated until the program terminates; a\n\
    \ reconfiguration point reaches every case in roughly one iteration)"

(* ================================================================ D6 *)

let worker_source ~busy ~rest =
  (* rest = 0 means genuinely always-busy: no sleep at all (a sleeping
     instant would count as quiescent) *)
  let tail = if rest = 0 then "R: skip;" else Printf.sprintf "R: sleep(%d);" rest in
  Printf.sprintf
    {|
module worker;

var beats: int = 0;

proc main() {
  var j: int;
  mh_init();
  while (true) {
    j = 0;
    while (j < %d) { j = j + 1; }
    beats = beats + 1;
    %s
  }
}
|}
    busy tail

let d6_vs_quiescence () =
  section "D6 (§4 / [9])"
    "Module-level atomicity (wait for quiescence) vs module participation";
  let hosts = Monitor.hosts in
  let rows =
    List.map
      (fun (busy, rest) ->
        let source = worker_source ~busy ~rest in
        let program = Dr_lang.Parser.parse_program source in
        (* duty cycle under default params: busy_instrs × instr_cost vs
           the sleep *)
        let params = Bus.default_params in
        let busy_time = float_of_int (2 * busy) *. params.instr_cost in
        let duty = busy_time /. (busy_time +. float_of_int rest) in
        (* baseline: wait for quiescence (no instrumentation needed) *)
        let bus = Bus.create ~hosts () in
        (match Bus.register_program bus program with
        | Ok () -> ()
        | Error e -> failwith e);
        (match Bus.spawn bus ~instance:"w" ~module_name:"worker" ~host:"hostA" () with
        | Ok () -> ()
        | Error e -> failwith e);
        Bus.run ~until:10.0 bus;
        let asked = Bus.now bus in
        let result = ref None in
        Dr_baselines.Quiescence.update_when_quiescent bus ~instance:"w"
          ~new_instance:"w2" ~poll_interval:0.5 ~give_up_after:500.0
          ~on_done:(fun r -> result := Some r)
          ();
        Bus.run_while bus ~max_events:3_000_000 (fun () -> !result = None);
        let baseline =
          match !result with
          | Some (Ok o) when o.completed -> Printf.sprintf "%.1f" o.waited
          | Some (Ok _) -> "never (gave up)"
          | Some (Error e) -> "error: " ^ e
          | None -> "no answer"
        in
        (* ours: instrumented worker; signal and time to divulge *)
        let prepared =
          prepare_exn program [ { I.pt_proc = "main"; pt_label = "R"; pt_vars = None } ]
        in
        let bus2 = Bus.create ~hosts () in
        (match Bus.register_program bus2 prepared.I.prepared_program with
        | Ok () -> ()
        | Error e -> failwith e);
        (match Bus.spawn bus2 ~instance:"w" ~module_name:"worker" ~host:"hostA" () with
        | Ok () -> ()
        | Error e -> failwith e);
        Bus.run ~until:10.0 bus2;
        let t0 = Bus.now bus2 in
        let got = ref None in
        Bus.on_divulge bus2 ~instance:"w" (fun _ -> got := Some (Bus.now bus2));
        Bus.signal_reconfig bus2 ~instance:"w";
        Bus.run_while bus2 ~max_events:3_000_000 (fun () -> !got = None);
        let ours =
          match !got with
          | Some t -> Printf.sprintf "%.1f" (t -. t0)
          | None -> "?"
        in
        ignore asked;
        [ Printf.sprintf "busy=%d sleep=%d" busy rest;
          pct (100.0 *. duty); baseline; "no"; ours; "yes" ])
      [ (10, 20); (200, 10); (2000, 2); (4000, 0) ]
  in
  print_table
    [ "workload"; "duty cycle"; "quiescence wait (vt)"; "state kept";
      "ours: capture (vt)"; "state kept" ]
    rows;
  print_endline
    "\n(claim: without module participation an update must wait for the\n\
    \ module to stop executing — a busy module postpones it indefinitely —\n\
    \ and the replacement starts fresh; with participation the delay is\n\
    \ bounded by one pass to the next point and the state survives)"

(* ================================================================ D7 *)

let d7_heterogeneous () =
  section "D7 (§1.2/§5)" "Heterogeneous migration through the abstract format";
  let prepared = prepare_exn (Synthetic.deeprec ~depth:64) Synthetic.deeprec_points in
  let m, divulged, _ = standalone prepared.I.prepared_program in
  Machine.run ~max_steps:100_000_000 m;
  Machine.deliver_signal m;
  Machine.set_ready m;
  Machine.run ~max_steps:100_000_000 m;
  let image = List.hd !divulged in
  Printf.printf "state image: %d records, abstract encoding %d bytes\n\n"
    (Image.depth image)
    (Bytes.length (Dr_state.Codec.encode_abstract image));
  let archs = Dr_state.Arch.all in
  let rows =
    List.map
      (fun src ->
        let native =
          match Dr_state.Codec.Native.encode src image with
          | Ok b -> b
          | Error e -> failwith e
        in
        Printf.sprintf "%s (%d B)" src.Dr_state.Arch.arch_name (Bytes.length native)
        :: List.map
             (fun dst ->
               match Dr_state.Codec.Native.translate ~src ~dst native with
               | Error e -> "FAIL: " ^ e
               | Ok out -> (
                 match Dr_state.Codec.Native.decode dst out with
                 | Ok decoded when Image.equal decoded image ->
                   Printf.sprintf "ok (%d B)" (Bytes.length out)
                 | Ok _ -> "MISMATCH"
                 | Error e -> "FAIL: " ^ e))
             archs)
      archs
  in
  print_table
    ("native source \\ destination"
    :: List.map (fun a -> a.Dr_state.Arch.arch_name) archs)
    rows;
  print_endline
    "\n(every pair round-trips through the abstract format; 32-bit targets\n\
    \ use smaller native encodings, and refuse values that do not fit)"

(* ================================================================ D8 *)

let d8_vs_recompilation () =
  section "D8 (§4 / [10])"
    "Preparation at compile time (ours) vs migration-program generation \
     at migration time (Theimer & Hayes)";
  let depth = 32 in
  let prepared = prepare_exn (Synthetic.deeprec ~depth) Synthetic.deeprec_points in
  let m, divulged, _ = standalone prepared.I.prepared_program in
  Machine.run ~max_steps:10_000_000 m;
  Machine.deliver_signal m;
  Machine.set_ready m;
  Machine.run ~max_steps:10_000_000 m;
  let image = List.hd !divulged in
  let image_bytes = Bytes.length (Dr_state.Codec.encode_abstract image) in
  let migration_program =
    match Dr_baselines.Recompile.synthesize ~prepared ~image with
    | Ok p -> p
    | Error e -> failwith e
  in
  let program_source = Dr_lang.Pretty.program_to_string migration_program in
  (* both resume correctly; compare what must happen at migration time *)
  let clone, _, _ = standalone ~status_attr:"clone" prepared.I.prepared_program in
  Machine.feed_image clone image;
  Machine.run ~max_steps:10_000_000 clone;
  let ours_ok =
    match Machine.status clone with Machine.Sleeping _ -> true | _ -> false
  in
  let mig_machine, _, _ = standalone migration_program in
  Machine.run ~max_steps:10_000_000 mig_machine;
  let theirs_ok =
    match Machine.status mig_machine with Machine.Sleeping _ -> true | _ -> false
  in
  print_table
    [ "property"; "ours (prepare at compile time)"; "[10] (generate at migration time)" ]
    [ [ "work per migration"; "encode+ship image";
        "synthesize + re-parse + lower a fresh program" ];
      [ "artifact shipped";
        Printf.sprintf "%d-byte state image" image_bytes;
        Printf.sprintf "%d-byte specialised source (%d lines)"
          (String.length program_source)
          (List.length (String.split_on_char '\n' program_source)) ];
      [ "restore mechanism"; "shared restore blocks + restore buffer";
        "captured values baked in as literals" ];
      [ "clone resumes correctly"; string_of_bool ours_ok;
        string_of_bool theirs_ok ];
      [ "supports capture too?"; "yes (same blocks)";
        "no (restore-only, regenerated per migration)" ] ];
  print_endline
    "\n(§4: \"they prepare a migration program for only the specific\n\
    \ migration requested, thus must prepare it at migration time\"; we\n\
    \ prepare once, for all possible reconfigurations)"

(* ================================================================ A1 *)

let hazard_source =
  {|
module hazard;

var idx: int = 0;
var data: int[];

proc f(x: int) {
  idx = 99;
  while (true) {
    R: idx = idx + 0;
    sleep(1);
  }
}

proc main() {
  data = alloc_int(4);
  f(data[idx]);
}
|}

let a1_dummy_args_ablation () =
  section "A1 (ablation, §3)"
    "Dummy-argument substitution: what breaks without it";
  let run ~substitute =
    let options = { I.default_options with substitute_dummy_args = substitute } in
    let prepared =
      match
        I.prepare ~options
          (Dr_lang.Parser.parse_program hazard_source)
          ~points:[ { I.pt_proc = "f"; pt_label = "R"; pt_vars = None } ]
      with
      | Ok p -> p.I.prepared_program
      | Error e -> failwith e
    in
    let m, divulged, _ = standalone prepared in
    Machine.run ~max_steps:100_000 m;
    Machine.deliver_signal m;
    Machine.set_ready m;
    Machine.run ~max_steps:100_000 m;
    let clone, _, _ = standalone ~status_attr:"clone" prepared in
    Machine.feed_image clone (List.hd !divulged);
    Machine.run ~max_steps:100_000 clone;
    Fmt.str "%a" Machine.pp_status (Machine.status clone)
  in
  print_table
    [ "restore re-invocation"; "clone status after restoration" ]
    [ [ "with dummy substitution (ours)"; run ~substitute:true ];
      [ "re-evaluating original arguments"; run ~substitute:false ] ];
  print_endline
    "\n(the callee mutated a variable used in the caller's argument\n\
    \ expression before the capture; §3: \"their evaluation can cause a\n\
    \ run-time error that did not arise when they were evaluated with the\n\
    \ original state\")"

(* ================================================================ A2 *)

let a2_liveness_ablation () =
  section "A2 (ablation, §3)"
    "Live-variable trimming of capture sets: image-size effect";
  let source =
    {|
module fat;

var keep: int = 0;

proc work(x: int) {
  var big1: string;
  var big2: string;
  var big3: string;
  var live: int;
  big1 = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
  big2 = big1 ^ big1;
  big3 = big2 ^ big2;
  live = x + len_of(big3);
  while (true) {
    R: keep = keep + live;
    sleep(1);
  }
}

proc len_of(s: string): int {
  return 1;
}

proc main() {
  work(7);
}
|}
  in
  let measure use_liveness =
    let options = { I.default_options with use_liveness } in
    let prepared =
      match
        I.prepare ~options
          (Dr_lang.Parser.parse_program source)
          ~points:[ { I.pt_proc = "work"; pt_label = "R"; pt_vars = None } ]
      with
      | Ok p -> p
      | Error e -> failwith e
    in
    let m, divulged, _ = standalone prepared.I.prepared_program in
    Machine.run ~max_steps:100_000 m;
    Machine.deliver_signal m;
    Machine.set_ready m;
    Machine.run ~max_steps:100_000 m;
    let image = List.hd !divulged in
    ( List.length (List.assoc "work" prepared.I.capture_sets),
      Bytes.length (Dr_state.Codec.encode_abstract image) )
  in
  let full_vars, full_bytes = measure false in
  let live_vars, live_bytes = measure true in
  print_table
    [ "capture set"; "variables in work"; "abstract image bytes" ]
    [ [ "all params+locals (default)"; string_of_int full_vars;
        string_of_int full_bytes ];
      [ "live variables only"; string_of_int live_vars;
        string_of_int live_bytes ] ];
  print_endline
    "\n(§3: \"data-flow analysis could be used to determine the set of live\n\
    \ variables\" — implemented as an option; dead string buffers vanish\n\
    \ from the image)"

(* ================================================================ A3 *)

let a3_optimization_inhibition () =
  section "A3 (ablation, §4)"
    "Reconfiguration points inhibit code motion — and placement fixes it";
  let rounds = 100 and inner = 50 in
  let measure ?(instrument = false) program =
    let program =
      if instrument then
        (prepare_exn program Synthetic.hoistable_points).I.prepared_program
      else program
    in
    let m, _, _ = standalone program in
    Machine.run ~max_steps:100_000_000 m;
    Machine.instr_count m
  in
  let base = measure (Synthetic.hoistable ~rounds ~inner ()) in
  let rows = ref [] in
  let row name program ~instrument =
    let optimized, stats = Dr_opt.Optimize.optimize program in
    let instrs = measure ~instrument optimized in
    rows :=
      [ name;
        string_of_int stats.hoisted;
        string_of_int stats.blocked_by_labels;
        string_of_int instrs;
        pct (100.0 *. float_of_int (instrs - base) /. float_of_int base) ]
      :: !rows
  in
  row "no point, optimised" (Synthetic.hoistable ~rounds ~inner ())
    ~instrument:false;
  row "point INSIDE hot loop, optimised"
    (Synthetic.hoistable ~point:`Inner ~rounds ~inner ())
    ~instrument:true;
  row "point in outer loop, optimised"
    (Synthetic.hoistable ~point:`Outer ~rounds ~inner ())
    ~instrument:true;
  print_table
    [ "program"; "hoisted"; "loops pinned"; "instrs"; "vs unoptimised" ]
    (List.rev !rows);
  Printf.printf "\n(unoptimised, no point: %d instrs)\n" base;
  print_endline
    "(§4: \"it could prohibit certain compiler optimizations such as code\n\
    \ motion ... it is preferable to place reconfiguration points outside of\n\
    \ computationally intensive loops, so that the code executed most often\n\
    \ can be optimized as much as possible\" — the outer-loop placement gets\n\
    \ both the optimisation and the reconfigurability)"

let all () =
  fig1_monitor ();
  fig2_mil ();
  fig34_transform ();
  fig5_script ();
  fig6_graph ();
  fig78_blocks ();
  d1_flag_overhead ();
  d2_vs_checkpointing ();
  d3_reconfig_delay ();
  d4_depth_sweep ();
  d4b_heap_sweep ();
  d5_vs_proc_update ();
  d6_vs_quiescence ();
  d7_heterogeneous ();
  d8_vs_recompilation ();
  a1_dummy_args_ablation ();
  a2_liveness_ablation ();
  a3_optimization_inhibition ()
