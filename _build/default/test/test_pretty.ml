module Pretty = Dr_lang.Pretty
module Parser = Dr_lang.Parser
module Ast = Dr_lang.Ast

let check_expr_str name expected source =
  let e = Parser.parse_expr source in
  Alcotest.(check string) name expected (Pretty.expr_to_string e)

let test_minimal_parens () =
  check_expr_str "no redundant parens" "1 + 2 * 3" "1 + (2 * 3)";
  check_expr_str "needed parens kept" "(1 + 2) * 3" "(1 + 2) * 3";
  check_expr_str "right-assoc paren" "10 - (4 - 3)" "10 - (4 - 3)";
  check_expr_str "bool structure" "a || b && c" "a || (b && c)";
  check_expr_str "unary tight" "-x * y" "-x * y"

let test_float_literals () =
  check_expr_str "keeps decimal" "2.0" "2.0";
  check_expr_str "fraction" "0.5" "0.5";
  let printed = Pretty.expr_to_string (Ast.Float 0.1) in
  Alcotest.(check bool) "0.1 round-trips exactly" true
    (match Parser.parse_expr printed with
    | Ast.Float f -> Float.equal f 0.1
    | _ -> false)

let test_string_escapes () =
  check_expr_str "escaped" {|"a\nb\t\"q\"\\"|} {|"a\nb\t\"q\"\\"|}

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_stmt_layout () =
  let program =
    Support.parse
      "module t;\nproc main() { if (true) { skip; } else { skip; } while (false) { skip; } }"
  in
  let printed = Pretty.program_to_string program in
  Alcotest.(check bool) "contains else" true (contains printed "} else {")

let test_labels_printed () =
  let program = Support.parse "module t;\nproc main() { R: skip; goto R; }" in
  let printed = Pretty.program_to_string program in
  Alcotest.(check bool) "label" true (contains printed "R: skip;");
  Alcotest.(check bool) "goto" true (contains printed "goto R;")

let test_program_golden () =
  let source =
    "module demo;\n\nvar g: int = 3;\n\nproc f(a: int, ref b: float): int {\n  return a;\n}\n\nproc main() { }\n"
  in
  let program = Support.parse source in
  let printed = Pretty.program_to_string program in
  let reparsed = Support.parse printed in
  Alcotest.(check bool) "round trip equal" true (Ast.equal_program program reparsed);
  (* printing is a fixpoint: pp (parse (pp p)) = pp p *)
  Alcotest.(check string) "fixpoint" printed (Pretty.program_to_string reparsed)

let prop_fixpoint =
  Support.qcheck ~count:200 "printing is a fixpoint" Gen.program (fun p ->
      let once = Dr_lang.Pretty.program_to_string p in
      let twice =
        Dr_lang.Pretty.program_to_string (Dr_lang.Parser.parse_program once)
      in
      String.equal once twice)

let () =
  Alcotest.run "pretty"
    [ ( "formatting",
        [ Alcotest.test_case "minimal parens" `Quick test_minimal_parens;
          Alcotest.test_case "float literals" `Quick test_float_literals;
          Alcotest.test_case "string escapes" `Quick test_string_escapes;
          Alcotest.test_case "stmt layout" `Quick test_stmt_layout;
          Alcotest.test_case "labels" `Quick test_labels_printed;
          Alcotest.test_case "golden round trip" `Quick test_program_golden ] );
      ("properties", [ prop_fixpoint ]) ]
