(* Shared helpers for the test suites. *)

module Ast = Dr_lang.Ast
module Machine = Dr_interp.Machine
module Value = Dr_state.Value

let parse source =
  try Dr_lang.Parser.parse_program source with
  | Dr_lang.Parser.Error (message, line) ->
    failwith (Printf.sprintf "parse error at line %d: %s" line message)
  | Dr_lang.Lexer.Error (message, line) ->
    failwith (Printf.sprintf "lexical error at line %d: %s" line message)

let typecheck_ok program =
  match Dr_lang.Typecheck.check program with
  | Ok () -> ()
  | Error errors ->
    Alcotest.failf "expected program to typecheck: %a"
      (Fmt.list ~sep:(Fmt.any "; ") Dr_lang.Typecheck.pp_error)
      errors

let typecheck_errors program =
  match Dr_lang.Typecheck.check program with
  | Ok () -> Alcotest.fail "expected type errors, got none"
  | Error errors -> List.map (fun (e : Dr_lang.Typecheck.error) -> e.message) errors

let prepare ?options source points =
  let program = parse source in
  match Dr_transform.Instrument.prepare ?options program ~points with
  | Ok prepared -> prepared
  | Error e -> Alcotest.failf "transform failed: %s" e

let point proc label =
  { Dr_transform.Instrument.pt_proc = proc; pt_label = label; pt_vars = None }

(* A scripted, inspectable io for driving machines without a bus. *)
type script_io = {
  io : Dr_interp.Io_intf.t;
  queues : (string, Value.t Queue.t) Hashtbl.t;
  mutable written : (string * Value.t) list;  (* reverse order *)
  mutable printed : string list;              (* reverse order *)
  mutable divulged : Dr_state.Image.t list;   (* reverse order *)
}

let script_io ?(feeds = []) () =
  let queues = Hashtbl.create 8 in
  List.iter
    (fun (iface, values) ->
      let q = Queue.create () in
      List.iter (fun v -> Queue.add v q) values;
      Hashtbl.replace queues iface q)
    feeds;
  let queue iface =
    match Hashtbl.find_opt queues iface with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace queues iface q;
      q
  in
  let rec t =
    { io =
        { io_query = (fun iface -> not (Queue.is_empty (queue iface)));
          io_read =
            (fun iface ->
              let q = queue iface in
              if Queue.is_empty q then None else Some (Queue.take q));
          io_write = (fun iface v -> t.written <- (iface, v) :: t.written);
          io_print = (fun line -> t.printed <- line :: t.printed);
          io_now = (fun () -> 0.0);
          io_encode = (fun image -> t.divulged <- image :: t.divulged);
          io_decode = (fun () -> None) };
      queues;
      written = [];
      printed = [];
      divulged = [] }
  in
  t

let written t = List.rev t.written
let printed t = List.rev t.printed

let feed t iface value = Queue.add value (Hashtbl.find_opt t.queues iface |> function Some q -> q | None -> let q = Queue.create () in Hashtbl.replace t.queues iface q; q)

let run_machine ?(max_steps = 1_000_000) machine =
  Machine.run ~max_steps machine;
  machine

let run_to_halt ?(max_steps = 1_000_000) program =
  let sio = script_io () in
  let machine = Machine.create ~io:sio.io program in
  Machine.run ~max_steps machine;
  (match Machine.status machine with
  | Machine.Halted -> ()
  | status ->
    Alcotest.failf "expected machine to halt, got %a (prints: %s)"
      Machine.pp_status status
      (String.concat " | " (printed sio)));
  (machine, sio)

let prints_of source =
  let (_, sio) = run_to_halt (parse source) in
  printed sio

let value = Alcotest.testable Value.pp Value.equal

let image = Alcotest.testable Dr_state.Image.pp Dr_state.Image.equal

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Drive a monitor-style single machine: instrumented program, scripted
   sensor/display feeds; capture mid-run and restore into a clone.
   Returns (old machine, clone, image, script ios). *)
let capture_and_clone ?(signal_after_reads = 2) prepared_program ~feeds
    ~sensor_values =
  let sio = script_io ~feeds () in
  let reads = ref 0 in
  let next = ref 0 in
  let io =
    { sio.io with
      io_read =
        (fun iface ->
          if String.equal iface "sensor" then begin
            incr reads;
            incr next;
            Some (Value.Vint (List.nth sensor_values (!next - 1)))
          end
          else sio.io.io_read iface) }
  in
  let machine = Machine.create ~io prepared_program in
  let guard = ref 0 in
  while
    Machine.status machine = Machine.Ready
    && !reads < signal_after_reads
    && !guard < 1_000_000
  do
    Machine.step machine;
    incr guard
  done;
  Machine.deliver_signal machine;
  Machine.run ~max_steps:1_000_000 machine;
  let image =
    match sio.divulged with
    | [ image ] -> image
    | images -> Alcotest.failf "expected one divulged image, got %d" (List.length images)
  in
  let clone_io =
    { sio.io with
      io_read =
        (fun iface ->
          if String.equal iface "sensor" then begin
            incr next;
            Some (Value.Vint (List.nth sensor_values (!next - 1)))
          end
          else sio.io.io_read iface) }
  in
  let clone = Machine.create ~status_attr:"clone" ~io:clone_io prepared_program in
  Machine.feed_image clone image;
  (machine, clone, image, sio)
