test/test_liveness.ml: Alcotest Dr_analysis Dr_lang Option Support
