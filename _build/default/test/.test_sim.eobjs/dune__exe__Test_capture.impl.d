test/test_capture.ml: Alcotest Array Dr_interp Dr_state Dr_transform Dr_workloads Float Fmt Lazy List Option Printf QCheck2 Queue String Support
