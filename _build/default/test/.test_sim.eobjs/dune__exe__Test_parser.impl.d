test/test_parser.ml: Alcotest Dr_lang Gen Printexc Printf QCheck2 String Support
