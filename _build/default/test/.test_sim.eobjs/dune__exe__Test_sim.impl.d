test/test_sim.ml: Alcotest Dr_sim Int64 List QCheck2 Support
