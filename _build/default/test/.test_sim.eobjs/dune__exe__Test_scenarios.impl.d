test/test_scenarios.ml: Alcotest Dr_bus Dr_interp Dr_reconfig Dr_sim Dr_state Dr_transform Dr_workloads Dynrecon Hashtbl List Printf Support
