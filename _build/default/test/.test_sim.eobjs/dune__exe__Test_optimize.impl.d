test/test_optimize.ml: Alcotest Dr_interp Dr_lang Dr_opt Dr_transform Dr_workloads Gen Printexc Printf QCheck2 Support
