test/test_mil.mli:
