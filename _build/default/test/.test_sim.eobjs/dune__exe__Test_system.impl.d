test/test_system.ml: Alcotest Dr_bus Dr_interp Dr_reconfig Dr_state Dr_transform Dr_workloads Dynrecon Fmt List Option String
