test/test_typecheck.ml: Alcotest Dr_lang List Printf String Support
