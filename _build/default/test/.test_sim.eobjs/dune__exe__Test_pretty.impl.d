test/test_pretty.ml: Alcotest Dr_lang Float Gen String Support
