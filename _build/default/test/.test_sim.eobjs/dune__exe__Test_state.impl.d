test/test_state.ml: Alcotest Dr_lang Dr_state Float Fmt Int32 List String
