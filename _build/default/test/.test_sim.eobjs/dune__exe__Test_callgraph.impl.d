test/test_callgraph.ml: Alcotest Dr_analysis List String Support
