test/test_callgraph.mli:
