test/test_reconfig_graph.mli:
