test/test_report.ml: Alcotest Dr_bus Dr_report Dr_workloads Dynrecon List String Support
