test/test_reconfig_graph.ml: Alcotest Dr_analysis List Printf String Support
