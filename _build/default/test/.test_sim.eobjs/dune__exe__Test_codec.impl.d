test/test_codec.ml: Alcotest Bytes Dr_lang Dr_state Gen List Printf QCheck2 Result String Support
