test/test_interp.ml: Alcotest Dr_interp Dr_state List Printf String Support
