test/test_transform.ml: Alcotest Dr_analysis Dr_interp Dr_lang Dr_transform Dr_workloads Gen Lazy List Option Printexc QCheck2 String Support
