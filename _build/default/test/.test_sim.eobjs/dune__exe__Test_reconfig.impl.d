test/test_reconfig.ml: Alcotest Bytes Dr_bus Dr_interp Dr_reconfig Dr_sim Dr_state Dr_workloads Filename List Scanf String Support Sys
