test/test_mil.ml: Alcotest Dr_mil Dr_workloads Gen List Option Printexc QCheck2 String Support
