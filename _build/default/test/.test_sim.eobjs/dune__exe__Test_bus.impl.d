test/test_bus.ml: Alcotest Dr_bus Dr_interp Dr_sim Dr_state Dr_workloads Dynrecon Fmt List Option Printf Support
