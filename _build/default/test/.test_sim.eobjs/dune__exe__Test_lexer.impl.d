test/test_lexer.ml: Alcotest Dr_lang Fmt List String
