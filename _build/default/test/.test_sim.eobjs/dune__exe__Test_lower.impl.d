test/test_lower.ml: Alcotest Array Dr_interp Dr_lang Fmt Hashtbl List Option Printf Support
