test/test_baselines.ml: Alcotest Array Dr_baselines Dr_bus Dr_interp Dr_lang Dr_state Dr_transform Dr_workloads Dynrecon List Option Printf QCheck2 String Support
