test/test_placement.ml: Alcotest Dr_analysis Lazy List Support
