(* Capture/restore semantics on a single machine: the paper's core
   mechanism, exercised without the bus. *)

module I = Dr_transform.Instrument
module Machine = Dr_interp.Machine
module Value = Dr_state.Value
module Image = Dr_state.Image

let monitor_compute =
  {|
module compute;

proc main() {
  var n: int;
  var response: float;
  mh_init();
  while (true) {
    while (mh_query("display")) {
      mh_read("display", n);
      compute(n, n, response);
      mh_write("display", response);
    }
    if (mh_query("sensor")) {
      compute(1, 1, response);
    }
    sleep(2);
  }
}

proc compute(num: int, n: int, ref rp: float) {
  var temper: int;
  if (n <= 0) { rp = 0.0; return; }
  compute(num, n - 1, rp);
  R: mh_read("sensor", temper);
  rp = rp + float(temper) / float(num);
}
|}

let prepared_monitor =
  lazy
    (Support.prepare monitor_compute [ Support.point "compute" "R" ]).I
      .prepared_program

let sensor_stream = List.init 64 (fun i -> i + 1)

let test_capture_mid_recursion () =
  let program = Lazy.force prepared_monitor in
  let _old, clone, image, sio =
    Support.capture_and_clone program
      ~feeds:[ ("display", [ Value.Vint 4 ]) ]
      ~sensor_values:sensor_stream ~signal_after_reads:2
  in
  (* image shape: two interrupted compute frames + main, deepest first *)
  Alcotest.(check int) "three records" 3 (Image.depth image);
  let locations = List.map (fun (r : Image.record) -> r.location) image.records in
  Alcotest.(check (list int)) "deepest frame first: R edge, self-call, main"
    [ 4; 3; 1 ] locations;
  (* the interrupted frame had consumed temps 1 and 2: rp = 1/4 + 2/4 *)
  (match image.records with
  | { values = [ _num; _n; rp; _temper ]; _ } :: _ ->
    Alcotest.check Support.value "partial sum" (Value.Vfloat 0.75) rp
  | _ -> Alcotest.fail "record shape");
  (* finish the clone: it must write the average of 1..4 *)
  let guard = ref 0 in
  while Machine.status clone = Machine.Ready && sio.Support.written = [] && !guard < 100_000 do
    Machine.step clone;
    incr guard
  done;
  match Support.written sio with
  | [ ("display", Value.Vfloat avg) ] ->
    Alcotest.(check (float 1e-9)) "continues where it left off" 2.5 avg
  | w -> Alcotest.failf "unexpected writes (%d)" (List.length w)

let test_clone_equivalent_to_uninterrupted () =
  (* the sequence of display replies with a capture/restore in the middle
     equals the sequence without any reconfiguration *)
  let program = Lazy.force prepared_monitor in
  let run_uninterrupted () =
    let sio =
      Support.script_io ~feeds:[ ("display", [ Value.Vint 4 ]) ] ()
    in
    let next = ref 0 in
    let io =
      { sio.Support.io with
        io_read =
          (fun iface ->
            if String.equal iface "sensor" then begin
              incr next;
              Some (Value.Vint (List.nth sensor_stream (!next - 1)))
            end
            else sio.Support.io.io_read iface) }
    in
    let m = Machine.create ~io program in
    let guard = ref 0 in
    while Machine.status m = Machine.Ready && sio.Support.written = [] && !guard < 100_000 do
      Machine.step m;
      incr guard
    done;
    Support.written sio
  in
  let run_interrupted () =
    let _old, clone, _image, sio =
      Support.capture_and_clone program
        ~feeds:[ ("display", [ Value.Vint 4 ]) ]
        ~sensor_values:sensor_stream ~signal_after_reads:2
    in
    let guard = ref 0 in
    while Machine.status clone = Machine.Ready && sio.Support.written = [] && !guard < 100_000 do
      Machine.step clone;
      incr guard
    done;
    Support.written sio
  in
  Alcotest.(check (list (pair string Support.value)))
    "identical observable behaviour" (run_uninterrupted ()) (run_interrupted ())

let test_interrupt_at_every_point () =
  (* deliver the signal after each possible number of sensor reads (the
     stack is at a different shape each time); the final answer must
     always be 2.5 *)
  let program = Lazy.force prepared_monitor in
  List.iter
    (fun after_reads ->
      let _old, clone, image, sio =
        Support.capture_and_clone program
          ~feeds:[ ("display", [ Value.Vint 4 ]) ]
          ~sensor_values:sensor_stream ~signal_after_reads:after_reads
      in
      (* after k reads, frames (4, k+1) … (4, 4) plus main are live *)
      Alcotest.(check int)
        (Printf.sprintf "records after %d reads" after_reads)
        (4 - after_reads + 1)
        (Image.depth image);
      let guard = ref 0 in
      while
        Machine.status clone = Machine.Ready
        && sio.Support.written = []
        && !guard < 100_000
      do
        Machine.step clone;
        incr guard
      done;
      match Support.written sio with
      | [ ("display", Value.Vfloat avg) ] ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "answer after %d reads" after_reads)
          2.5 avg
      | w ->
        Alcotest.failf "after %d reads: %d writes, clone %s" after_reads
          (List.length w)
          (Fmt.str "%a" Machine.pp_status (Machine.status clone)))
    [ 1; 2; 3 ]

let test_deep_recursion_capture () =
  List.iter
    (fun depth ->
      let program = Dr_workloads.Synthetic.deeprec ~depth in
      let prepared =
        match I.prepare program ~points:Dr_workloads.Synthetic.deeprec_points with
        | Ok p -> p.I.prepared_program
        | Error e -> Alcotest.failf "prepare: %s" e
      in
      let sio = Support.script_io () in
      let m = Machine.create ~io:sio.Support.io prepared in
      (* run to the bottom of the recursion (machine sleeps there) *)
      Machine.run ~max_steps:10_000_000 m;
      Alcotest.(check bool) "sleeping at bottom" true
        (match Machine.status m with Machine.Sleeping _ -> true | _ -> false);
      Machine.deliver_signal m;
      Machine.set_ready m;
      Machine.run ~max_steps:10_000_000 m;
      Alcotest.(check bool)
        (Printf.sprintf "halted after capture at depth %d" depth)
        true
        (Machine.status m = Machine.Halted);
      match sio.Support.divulged with
      | [ image ] ->
        Alcotest.(check int)
          (Printf.sprintf "depth-%d image has depth+2 records" depth)
          (depth + 2) (Image.depth image);
        (* restore and let the clone tick once more *)
        let sio2 = Support.script_io () in
        let clone = Machine.create ~status_attr:"clone" ~io:sio2.Support.io prepared in
        Machine.feed_image clone image;
        Machine.run ~max_steps:10_000_000 clone;
        Alcotest.(check bool)
          (Printf.sprintf "clone rebuilt %d frames and sleeps" depth)
          true
          (match Machine.status clone with Machine.Sleeping _ -> true | _ -> false);
        Alcotest.(check int) "stack depth restored" (depth + 2)
          (Machine.stack_depth clone)
      | images -> Alcotest.failf "expected one image, got %d" (List.length images))
    [ 1; 4; 32; 128 ]

let test_heap_and_pointers_migrate () =
  let source =
    {|
module heapy;

var table: int[];
var alias: int[];
var cur: int*;

proc main() {
  var steps: int;
  mh_init();
  table = alloc_int(8);
  alias = table;
  cur = &table[3];
  table[0] = 11;
  cur[0] = 44;
  while (true) {
    R: steps = steps + 1;
    sleep(1);
  }
}
|}
  in
  let prepared =
    (Support.prepare source [ Support.point "main" "R" ]).I.prepared_program
  in
  let sio = Support.script_io () in
  let m = Machine.create ~io:sio.Support.io prepared in
  Machine.run ~max_steps:100_000 m;
  Machine.deliver_signal m;
  Machine.set_ready m;
  Machine.run ~max_steps:100_000 m;
  let image =
    match sio.Support.divulged with
    | [ image ] -> image
    | _ -> Alcotest.fail "no image"
  in
  Alcotest.(check int) "one shared heap block" 1 (List.length image.Image.heap);
  (* push it through the abstract codec, as a real migration would *)
  let image =
    match Dr_state.Codec.decode_abstract (Dr_state.Codec.encode_abstract image) with
    | Ok i -> i
    | Error e -> Alcotest.failf "codec: %s" e
  in
  let sio2 = Support.script_io () in
  let clone = Machine.create ~status_attr:"clone" ~io:sio2.Support.io prepared in
  Machine.feed_image clone image;
  Machine.run ~max_steps:100_000 clone;
  (* aliasing must survive: table, alias and cur reference one block *)
  let table = Option.get (Machine.read_global clone "table") in
  let alias = Option.get (Machine.read_global clone "alias") in
  let cur = Option.get (Machine.read_global clone "cur") in
  (match table, alias, cur with
  | Value.Varr b1, Value.Varr b2, Value.Vptr (b3, 3) ->
    Alcotest.(check int) "alias same block" b1 b2;
    Alcotest.(check int) "pointer same block" b1 b3
  | _ -> Alcotest.fail "heap value shapes");
  match Machine.heap_block clone (match table with Value.Varr b -> b | _ -> -1) with
  | Some block ->
    Alcotest.check Support.value "cell 0" (Value.Vint 11) block.cells.(0);
    Alcotest.check Support.value "cell 3 via pointer" (Value.Vint 44) block.cells.(3)
  | None -> Alcotest.fail "block missing"

let test_chained_reconfigurations () =
  (* capture, restore, capture the clone again, restore again: the
     machinery must chain indefinitely *)
  let depth = 6 in
  let program = Dr_workloads.Synthetic.deeprec ~depth in
  let prepared =
    match I.prepare program ~points:Dr_workloads.Synthetic.deeprec_points with
    | Ok p -> p.I.prepared_program
    | Error e -> Alcotest.failf "prepare: %s" e
  in
  let generation_of image =
    let sio = Support.script_io () in
    let m = Machine.create ~status_attr:"clone" ~io:sio.Support.io prepared in
    Machine.feed_image m image;
    Machine.run ~max_steps:1_000_000 m;
    (m, sio)
  in
  (* generation 0 *)
  let sio0 = Support.script_io () in
  let m0 = Machine.create ~io:sio0.Support.io prepared in
  Machine.run ~max_steps:1_000_000 m0;
  Machine.deliver_signal m0;
  Machine.set_ready m0;
  Machine.run ~max_steps:1_000_000 m0;
  let image0 =
    match sio0.Support.divulged with [ i ] -> i | _ -> Alcotest.fail "no image0"
  in
  (* generation 1: restore, run a little, capture again *)
  let m1, sio1 = generation_of image0 in
  Alcotest.(check int) "gen1 stack" (depth + 2) (Machine.stack_depth m1);
  Machine.deliver_signal m1;
  Machine.set_ready m1;
  Machine.run ~max_steps:1_000_000 m1;
  let image1 =
    match sio1.Support.divulged with [ i ] -> i | _ -> Alcotest.fail "no image1"
  in
  Alcotest.(check int) "image1 records" (depth + 2) (Image.depth image1);
  (* generation 2 *)
  let m2, _sio2 = generation_of image1 in
  Alcotest.(check int) "gen2 stack" (depth + 2) (Machine.stack_depth m2);
  Alcotest.(check bool) "gen2 alive" true
    (match Machine.status m2 with Machine.Sleeping _ -> true | _ -> false)

(* §3's run-time-error hazard: the callee mutates a variable used in the
   caller's argument expression, so naively re-evaluating the original
   arguments during restoration faults. Dummy substitution prevents it. *)
let hazard_source =
  {|
module hazard;

var idx: int = 0;
var data: int[];

proc f(x: int) {
  idx = 99;
  while (true) {
    R: idx = idx + 0;
    sleep(1);
  }
}

proc main() {
  data = alloc_int(4);
  f(data[idx]);
}
|}

let run_hazard ~substitute =
  let options = { I.default_options with substitute_dummy_args = substitute } in
  let prepared =
    (Support.prepare ~options hazard_source [ Support.point "f" "R" ]).I
      .prepared_program
  in
  let sio = Support.script_io () in
  let m = Machine.create ~io:sio.Support.io prepared in
  Machine.run ~max_steps:100_000 m;
  Machine.deliver_signal m;
  Machine.set_ready m;
  Machine.run ~max_steps:100_000 m;
  let image = List.hd sio.Support.divulged in
  let clone = Machine.create ~status_attr:"clone" ~io:sio.Support.io prepared in
  Machine.feed_image clone image;
  Machine.run ~max_steps:100_000 clone;
  Machine.status clone

let test_dummy_substitution_prevents_fault () =
  (match run_hazard ~substitute:true with
  | Machine.Sleeping _ -> ()
  | s ->
    Alcotest.failf "with substitution the clone should resume, got %a"
      Machine.pp_status s);
  match run_hazard ~substitute:false with
  | Machine.Crashed message ->
    Alcotest.(check bool) "faults on re-evaluated argument" true
      (String.length message > 0)
  | s ->
    Alcotest.failf "without substitution the clone should crash, got %a"
      Machine.pp_status s

let test_restore_into_nested_loops () =
  (* the point sits inside two nested whiles: restoration must goto from
     main's entry into the inner loop body and produce the exact result
     of an uninterrupted run (the Fig. 4 situation, two levels deep) *)
  let program = Dr_workloads.Synthetic.hotloop ~rounds:20 ~inner:15 in
  let prepared =
    match
      I.prepare program ~points:(Dr_workloads.Synthetic.hotloop_points `Inner)
    with
    | Ok p -> p.I.prepared_program
    | Error e -> Alcotest.failf "prepare: %s" e
  in
  let reference =
    let sio = Support.script_io () in
    let m = Machine.create ~io:sio.Support.io program in
    Machine.run ~max_steps:1_000_000 m;
    Support.printed sio
  in
  List.iter
    (fun offset ->
      let sio = Support.script_io () in
      let m = Machine.create ~io:sio.Support.io prepared in
      Machine.run ~max_steps:offset m;
      Machine.deliver_signal m;
      Machine.run ~max_steps:1_000_000 m;
      match sio.Support.divulged with
      | [ image ] ->
        let sio2 = Support.script_io () in
        let clone = Machine.create ~status_attr:"clone" ~io:sio2.Support.io prepared in
        Machine.feed_image clone image;
        Machine.run ~max_steps:1_000_000 clone;
        Alcotest.(check bool)
          (Printf.sprintf "clone halted (offset %d)" offset)
          true
          (Machine.status clone = Machine.Halted);
        Alcotest.(check (list string))
          (Printf.sprintf "same result as uninterrupted (offset %d)" offset)
          reference (Support.printed sio2)
      | _ ->
        (* signal landed after the loops finished: nothing to restore *)
        ())
    [ 10; 137; 1004; 4999 ]

(* Migration transparency under arbitrary signal timing: whenever the
   signal arrives, the combined observable output of the interrupted
   module and its clone equals the output of an uninterrupted run. *)
let prop_transparent_at_any_offset =
  Support.qcheck ~count:60 "signal offset transparency"
    QCheck2.Gen.(int_bound 3000)
    (fun offset ->
      let program = Lazy.force prepared_monitor in
      let make_io written =
        let next = ref 0 in
        let feeds = Queue.create () in
        Queue.add (Value.Vint 4) feeds;
        { (Dr_interp.Io_intf.null ()) with
          io_query =
            (fun iface -> iface = "display" && not (Queue.is_empty feeds));
          io_read =
            (fun iface ->
              match iface with
              | "display" ->
                if Queue.is_empty feeds then None else Some (Queue.take feeds)
              | "sensor" ->
                incr next;
                Some (Value.Vint !next)
              | _ -> None);
          io_write = (fun iface v -> written := (iface, v) :: !written) }
      in
      (* reference: run without any signal until the reply is written *)
      let reference =
        let written = ref [] in
        let m = Machine.create ~io:(make_io written) program in
        let guard = ref 0 in
        while Machine.status m = Machine.Ready && !written = [] && !guard < 100_000 do
          Machine.step m;
          incr guard
        done;
        List.rev !written
      in
      (* interrupted: signal after [offset] instructions; if the module
         divulges, restore a clone over the same io *)
      let interrupted =
        let written = ref [] in
        let divulged = ref None in
        let next = ref 0 in
        let feeds = Queue.create () in
        Queue.add (Value.Vint 4) feeds;
        let io =
          { (Dr_interp.Io_intf.null ()) with
            io_query =
              (fun iface -> iface = "display" && not (Queue.is_empty feeds));
            io_read =
              (fun iface ->
                match iface with
                | "display" ->
                  if Queue.is_empty feeds then None else Some (Queue.take feeds)
                | "sensor" ->
                  incr next;
                  Some (Value.Vint !next)
                | _ -> None);
            io_write = (fun iface v -> written := (iface, v) :: !written);
            io_encode = (fun image -> divulged := Some image) }
        in
        let m = Machine.create ~io program in
        let guard = ref 0 in
        while Machine.status m = Machine.Ready && !guard < offset && !written = [] do
          Machine.step m;
          incr guard
        done;
        Machine.deliver_signal m;
        (* run the old incarnation to its end (divulge or the reply) *)
        let guard = ref 0 in
        while Machine.status m = Machine.Ready && !written = [] && !guard < 100_000 do
          Machine.step m;
          incr guard
        done;
        (match Machine.status m, !divulged with
        | _, Some image when !written = [] ->
          let clone = Machine.create ~status_attr:"clone" ~io program in
          Machine.feed_image clone image;
          let guard = ref 0 in
          while
            Machine.status clone = Machine.Ready && !written = [] && !guard < 100_000
          do
            Machine.step clone;
            incr guard
          done
        | _ -> ());
        List.rev !written
      in
      match reference, interrupted with
      | [ (_, Value.Vfloat a) ], [ (_, Value.Vfloat b) ] -> Float.equal a b
      | _ ->
        QCheck2.Test.fail_reportf
          "offset %d: reference %d write(s), interrupted %d write(s)" offset
          (List.length reference) (List.length interrupted))

let () =
  Alcotest.run "capture"
    [ ( "monitor",
        [ Alcotest.test_case "mid-recursion" `Quick test_capture_mid_recursion;
          Alcotest.test_case "equivalent to uninterrupted" `Quick
            test_clone_equivalent_to_uninterrupted;
          Alcotest.test_case "interrupt at every point" `Quick
            test_interrupt_at_every_point ] );
      ( "depth",
        [ Alcotest.test_case "deep recursion" `Quick test_deep_recursion_capture ] );
      ( "heap",
        [ Alcotest.test_case "heap and pointers" `Quick
            test_heap_and_pointers_migrate ] );
      ( "chaining",
        [ Alcotest.test_case "repeated reconfigurations" `Quick
            test_chained_reconfigurations ] );
      ( "nested loops",
        [ Alcotest.test_case "restore into nested loops" `Quick
            test_restore_into_nested_loops ] );
      ( "dummy arguments",
        [ Alcotest.test_case "substitution prevents the §3 fault" `Quick
            test_dummy_substitution_prevents_fault ] );
      ("properties", [ prop_transparent_at_any_offset ]) ]
