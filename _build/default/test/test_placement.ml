module Placement = Dr_analysis.Placement

let program =
  Support.parse
    {|
module t;

proc rare(x: int) {
  Rcold: skip;
}

proc orphan() {
  Rnever: skip;
}

proc expr_only(): int {
  Rbad: skip;
  return 1;
}

proc main() {
  var i: int;
  var j: int;
  var v: int;
  Rtop: skip;
  while (i < 10) {
    Rwarm: j = 0;
    while (j < 10) {
      Rhot: j = j + 1;
    }
    i = i + 1;
    rare(i);
    rare(i + 1);
  }
  v = expr_only();
}
|}

let advices = lazy (Placement.advise program)

let find label =
  match
    List.find_opt (fun a -> a.Placement.a_label = label) (Lazy.force advices)
  with
  | Some a -> a
  | None -> Alcotest.failf "no advice for %s" label

let test_tiers () =
  Alcotest.(check string) "hot" "hot" (Placement.tier_name (find "Rhot").a_tier);
  Alcotest.(check string) "warm" "warm" (Placement.tier_name (find "Rwarm").a_tier);
  Alcotest.(check string) "top-level cold" "cold"
    (Placement.tier_name (find "Rtop").a_tier);
  Alcotest.(check string) "callee cold" "cold"
    (Placement.tier_name (find "Rcold").a_tier)

let test_depths_and_order () =
  Alcotest.(check int) "hot depth" 2 (find "Rhot").a_loop_depth;
  Alcotest.(check int) "warm depth" 1 (find "Rwarm").a_loop_depth;
  (* deepest first *)
  match Lazy.force advices with
  | first :: _ -> Alcotest.(check string) "hot ranked first" "Rhot" first.a_label
  | [] -> Alcotest.fail "no advice"

let test_caller_sites () =
  Alcotest.(check int) "rare called twice" 2 (find "Rcold").a_caller_sites;
  Alcotest.(check int) "main never called" 0 (find "Rtop").a_caller_sites

let test_instrumentation_cost () =
  (* a point in rare instruments main and rare, with 2 call edges *)
  let a = find "Rcold" in
  Alcotest.(check int) "two relevant procs" 2 a.a_relevant_procs;
  Alcotest.(check int) "two call edges" 2 a.a_call_edges;
  (* a point in main only instruments main *)
  let top = find "Rtop" in
  Alcotest.(check int) "one relevant proc" 1 top.a_relevant_procs;
  Alcotest.(check int) "no call edges" 0 top.a_call_edges

let test_unusable_points_flagged () =
  (* expr_only is reached only through an expression-position call, so a
     point inside it cannot be instrumented *)
  let bad = find "Rbad" in
  Alcotest.(check bool) "flagged unusable" true (bad.a_viable <> None)

let test_unreachable_proc_excluded () =
  Alcotest.(check bool) "orphan's label not advised" true
    (List.for_all
       (fun a -> a.Placement.a_label <> "Rnever")
       (Lazy.force advices))

let test_no_labels () =
  let p = Support.parse "module t;\nproc main() { skip; }" in
  Alcotest.(check int) "empty advice" 0 (List.length (Placement.advise p))

let () =
  Alcotest.run "placement"
    [ ( "advisor",
        [ Alcotest.test_case "tiers" `Quick test_tiers;
          Alcotest.test_case "depths and order" `Quick test_depths_and_order;
          Alcotest.test_case "caller sites" `Quick test_caller_sites;
          Alcotest.test_case "instrumentation cost" `Quick
            test_instrumentation_cost;
          Alcotest.test_case "unusable flagged" `Quick test_unusable_points_flagged;
          Alcotest.test_case "unreachable excluded" `Quick
            test_unreachable_proc_excluded;
          Alcotest.test_case "no labels" `Quick test_no_labels ] ) ]
