module Bus = Dr_bus.Bus
module Timeline = Dr_report.Timeline

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let lane_of rendered instance =
  List.find_opt
    (fun line ->
      String.length line > String.length instance
      && String.sub line 0 (String.length instance) = instance)
    (String.split_on_char '\n' rendered)

let test_monitor_timeline () =
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  Bus.run ~until:30.0 bus;
  (match
     Dynrecon.System.migrate bus ~instance:"compute" ~new_instance:"compute2"
       ~new_host:"hostB"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate: %s" e);
  Bus.run ~until:(Bus.now bus +. 20.0) bus;
  let rendered = Timeline.render bus in
  (* all four incarnations have lanes *)
  List.iter
    (fun instance ->
      if lane_of rendered instance = None then
        Alcotest.failf "missing lane for %s" instance)
    [ "display"; "compute"; "sensor"; "compute2" ];
  (* the old compute's lane carries signal and divulge markers, and is
     marked removed *)
  (match lane_of rendered "compute " with
  | Some lane ->
    Alcotest.(check bool) "signal marker" true (contains lane "S");
    Alcotest.(check bool) "divulge marker" true (contains lane "D");
    Alcotest.(check bool) "removed" true (contains lane "removed")
  | None -> Alcotest.fail "no compute lane");
  (* the clone's lane starts with a restore marker and runs on hostB *)
  (match lane_of rendered "compute2" with
  | Some lane ->
    Alcotest.(check bool) "restore marker" true (contains lane "R");
    Alcotest.(check bool) "on hostB" true (contains lane "hostB")
  | None -> Alcotest.fail "no compute2 lane");
  (* the event log mentions the script *)
  Alcotest.(check bool) "script logged" true (contains rendered "replace compute")

let test_no_cross_instance_marker_bleed () =
  (* compute vs compute2: the deposit marker for compute2 must not
     appear on compute's lane *)
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  Bus.run ~until:20.0 bus;
  (match
     Dynrecon.System.migrate bus ~instance:"compute" ~new_instance:"compute2"
       ~new_host:"hostB"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "migrate: %s" e);
  let rendered = Timeline.render bus in
  match lane_of rendered "compute " with
  | Some lane ->
    Alcotest.(check bool) "no R on the old lane" false
      (let bar_part =
         (* strip the trailing annotation after the bar *)
         match String.index_opt lane '(' with
         | Some i -> String.sub lane 0 i
         | None -> lane
       in
       contains bar_part "R")
  | None -> Alcotest.fail "no compute lane"

let test_empty_bus () =
  let bus = Bus.create ~hosts:Dr_workloads.Monitor.hosts () in
  let rendered = Timeline.render bus in
  Alcotest.(check bool) "renders" true (String.length rendered > 0)

let test_crash_marker () =
  let bus = Bus.create ~hosts:Dr_workloads.Monitor.hosts () in
  (match
     Bus.register_program bus
       (Support.parse "module boom;\nproc main() { var i: int; while (i < 50) { i = i + 1; } print(1 / 0); }")
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "register: %s" e);
  (match Bus.spawn bus ~instance:"b" ~module_name:"boom" ~host:"hostA" () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "spawn: %s" e);
  Bus.run bus;
  let rendered = Timeline.render bus in
  match lane_of rendered "b " with
  | Some lane -> Alcotest.(check bool) "X marker" true (contains lane "X")
  | None -> Alcotest.fail "no lane"

let () =
  Alcotest.run "report"
    [ ( "timeline",
        [ Alcotest.test_case "monitor migration" `Quick test_monitor_timeline;
          Alcotest.test_case "no marker bleed" `Quick
            test_no_cross_instance_marker_bleed;
          Alcotest.test_case "empty bus" `Quick test_empty_bus;
          Alcotest.test_case "crash marker" `Quick test_crash_marker ] ) ]
