module Lexer = Dr_lang.Lexer
module Token = Dr_lang.Token

let tokens source = List.map fst (Lexer.tokenize source)

let toks =
  Alcotest.testable
    (fun ppf tok -> Fmt.string ppf (Token.to_string tok))
    (fun a b -> a = b)

let check_tokens name source expected =
  Alcotest.(check (list toks)) name (expected @ [ Token.Teof ]) (tokens source)

let test_idents_and_keywords () =
  check_tokens "keywords vs idents" "module var foo proc refx ref"
    [ Token.Tmodule; Token.Tvar; Token.Tident "foo"; Token.Tproc;
      Token.Tident "refx"; Token.Tref ]

let test_numbers () =
  check_tokens "ints and floats" "0 42 3.5 10.25 2.0e3 7e2"
    [ Token.Tint_lit 0; Token.Tint_lit 42; Token.Tfloat_lit 3.5;
      Token.Tfloat_lit 10.25; Token.Tfloat_lit 2000.0;
      (* "7e2" without a dot lexes as int 7 then ident e2 *)
      Token.Tint_lit 7; Token.Tident "e2" ]

let test_operators () =
  check_tokens "operators" "== != <= >= < > = + - * / % && || ! & ^"
    [ Token.Teq; Token.Tne; Token.Tle; Token.Tge; Token.Tlt; Token.Tgt;
      Token.Tassign; Token.Tplus; Token.Tminus; Token.Tstar; Token.Tslash;
      Token.Tpercent; Token.Tandand; Token.Toror; Token.Tbang; Token.Tamp;
      Token.Tcaret ]

let test_punctuation () =
  check_tokens "punctuation" "{ } ( ) [ ] , ; :"
    [ Token.Tlbrace; Token.Trbrace; Token.Tlparen; Token.Trparen;
      Token.Tlbracket; Token.Trbracket; Token.Tcomma; Token.Tsemi;
      Token.Tcolon ]

let test_string_literals () =
  check_tokens "plain string" {|"hello"|} [ Token.Tstr_lit "hello" ];
  check_tokens "escapes" {|"a\nb\tc\\d\"e"|} [ Token.Tstr_lit "a\nb\tc\\d\"e" ];
  check_tokens "empty" {|""|} [ Token.Tstr_lit "" ]

let test_line_comments () =
  check_tokens "line comment" "x // rest of line\ny"
    [ Token.Tident "x"; Token.Tident "y" ]

let test_block_comments () =
  check_tokens "block comment" "x /* lots \n of \n stuff */ y"
    [ Token.Tident "x"; Token.Tident "y" ]

let test_line_numbers () =
  let toks = Lexer.tokenize "a\nb\n  c" in
  let lines = List.map snd toks in
  Alcotest.(check (list int)) "lines" [ 1; 2; 3; 3 ] lines

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let check_error name source expected_fragment =
  match Lexer.tokenize source with
  | exception Lexer.Error (message, _) ->
    if not (contains expected_fragment message) then
      Alcotest.failf "%s: error %S lacks %S" name message expected_fragment
  | _ -> Alcotest.failf "%s: expected a lexical error" name

let test_unterminated_string () =
  check_error "unterminated string" {|"abc|} "unterminated string"

let test_unterminated_comment () =
  check_error "unterminated comment" "/* abc" "unterminated comment"

let test_bad_escape () = check_error "bad escape" {|"\q"|} "bad escape"

let test_stray_char () = check_error "stray char" "a # b" "unexpected character"

let test_single_pipe () = check_error "single pipe" "a | b" "single '|'"

let test_true_false_null () =
  check_tokens "literals" "true false null"
    [ Token.Ttrue; Token.Tfalse; Token.Tnull ]

let () =
  Alcotest.run "lexer"
    [ ( "tokens",
        [ Alcotest.test_case "idents/keywords" `Quick test_idents_and_keywords;
          Alcotest.test_case "numbers" `Quick test_numbers;
          Alcotest.test_case "operators" `Quick test_operators;
          Alcotest.test_case "punctuation" `Quick test_punctuation;
          Alcotest.test_case "strings" `Quick test_string_literals;
          Alcotest.test_case "literals" `Quick test_true_false_null;
          Alcotest.test_case "line comments" `Quick test_line_comments;
          Alcotest.test_case "block comments" `Quick test_block_comments;
          Alcotest.test_case "line numbers" `Quick test_line_numbers ] );
      ( "errors",
        [ Alcotest.test_case "unterminated string" `Quick test_unterminated_string;
          Alcotest.test_case "unterminated comment" `Quick
            test_unterminated_comment;
          Alcotest.test_case "bad escape" `Quick test_bad_escape;
          Alcotest.test_case "stray char" `Quick test_stray_char;
          Alcotest.test_case "single pipe" `Quick test_single_pipe ] ) ]
