(* Direct tests of the AST→IR lowering: label resolution (including
   gotos into loop bodies), A-normal-form call extraction,
   short-circuit compilation, and jump targets. *)

module Ir = Dr_interp.Ir
module Lower = Dr_interp.Lower
module Ast = Dr_lang.Ast

let lower_main body =
  let source = Printf.sprintf "module t;\nproc main() {\n%s\n}" body in
  let program = Support.parse source in
  Support.typecheck_ok program;
  Lower.lower_proc (Option.get (Ast.find_proc program "main"))

let instr_names (code : Ir.proc_code) =
  Array.to_list
    (Array.map
       (function
         | Ir.Iassign _ -> "assign"
         | Ir.Icall { ret_temp = Some _; _ } -> "call/ret"
         | Ir.Icall { ret_temp = None; _ } -> "call"
         | Ir.Ireturn _ -> "return"
         | Ir.Ijump _ -> "jump"
         | Ir.Icjump _ -> "cjump"
         | Ir.Iprint _ -> "print"
         | Ir.Isleep _ -> "sleep"
         | Ir.Ibuiltin (name, _) -> name
         | Ir.Iskip -> "skip")
       code.pc_instrs)

let test_implicit_return () =
  let code = lower_main "skip;" in
  Alcotest.(check (list string)) "trailing return" [ "skip"; "return" ]
    (instr_names code)

let test_if_shape () =
  let code = lower_main "if (true) { skip; } else { print(1); }" in
  Alcotest.(check (list string)) "diamond"
    [ "cjump"; "skip"; "jump"; "print"; "return" ]
    (instr_names code);
  (match code.pc_instrs.(0) with
  | Ir.Icjump { if_false; _ } -> Alcotest.(check int) "else target" 3 if_false
  | _ -> Alcotest.fail "expected cjump");
  match code.pc_instrs.(2) with
  | Ir.Ijump target -> Alcotest.(check int) "join target" 4 target
  | _ -> Alcotest.fail "expected jump"

let test_if_without_else () =
  let code = lower_main "if (true) { skip; } print(1);" in
  Alcotest.(check (list string)) "no else jump"
    [ "cjump"; "skip"; "print"; "return" ]
    (instr_names code)

let test_while_shape () =
  let code = lower_main "var i: int; while (i < 3) { i = i + 1; }" in
  Alcotest.(check (list string)) "loop"
    [ "cjump"; "assign"; "jump"; "return" ]
    (instr_names code);
  (match code.pc_instrs.(2) with
  | Ir.Ijump target -> Alcotest.(check int) "back edge to condition" 0 target
  | _ -> Alcotest.fail "expected back jump");
  match code.pc_instrs.(0) with
  | Ir.Icjump { if_false; _ } -> Alcotest.(check int) "exit" 3 if_false
  | _ -> Alcotest.fail "expected cjump"

let test_label_covers_anf_prelude () =
  let source =
    "module t;\n\
     proc f(): int { return 1; }\n\
     proc main() {\n\
     var x: int;\n\
     L: x = f() + 1;\n\
     goto L;\n\
     }"
  in
  let program = Support.parse source in
  let code = Lower.lower_proc (Option.get (Ast.find_proc program "main")) in
  (* L must map to the extracted call, not the assignment, so goto L
     re-executes the call *)
  let l_target = List.assoc "L" code.pc_labels in
  match code.pc_instrs.(l_target) with
  | Ir.Icall { callee = "f"; ret_temp = Some _; _ } -> ()
  | instr ->
    Alcotest.failf "label should hit the call, got %s"
      (Fmt.str "%a" Ir.pp_instr instr)

let test_goto_into_loop () =
  let code =
    lower_main
      "var i: int;\ngoto In;\nwhile (i < 5) {\nIn: i = i + 1;\n}"
  in
  let target = List.assoc "In" code.pc_labels in
  (* the bare decl emits nothing, so the goto is instruction 0 *)
  (match code.pc_instrs.(0) with
  | Ir.Ijump t -> Alcotest.(check int) "goto lands inside loop" target t
  | instr ->
    Alcotest.failf "expected jump, got %s" (Fmt.str "%a" Ir.pp_instr instr));
  Alcotest.(check bool) "target is the increment" true
    (match code.pc_instrs.(target) with Ir.Iassign _ -> true | _ -> false)

let test_anf_extracts_nested_calls () =
  let source =
    "module t;\n\
     proc f(x: int): int { return x; }\n\
     proc main() { var y: int; y = f(f(1)) + f(2); }"
  in
  let program = Support.parse source in
  let code = Lower.lower_proc (Option.get (Ast.find_proc program "main")) in
  let calls =
    Array.to_list code.pc_instrs
    |> List.filter (function Ir.Icall _ -> true | _ -> false)
  in
  Alcotest.(check int) "three extracted calls" 3 (List.length calls);
  (* temps are fresh and all declared *)
  Alcotest.(check int) "three temps" 3 (List.length code.pc_temps);
  (* no residual Call nodes inside instruction expressions *)
  let residual = ref false in
  let rec expr_has_call (e : Ast.expr) =
    match e with
    | Call _ -> true
    | Int _ | Float _ | Bool _ | Str _ | Null | Var _ -> false
    | Index (a, b) | Binop (_, a, b) -> expr_has_call a || expr_has_call b
    | Addr (_, e) | Unop (_, e) -> expr_has_call e
    | Builtin (_, args) -> List.exists expr_has_call args
  in
  Array.iter
    (function
      | Ir.Iassign (_, e) -> if expr_has_call e then residual := true
      | Ir.Icjump { cond; _ } -> if expr_has_call cond then residual := true
      | Ir.Ireturn (Some e) -> if expr_has_call e then residual := true
      | _ -> ())
    code.pc_instrs;
  Alcotest.(check bool) "expressions are call-free" false !residual

let test_short_circuit_compiles_to_jumps () =
  let code = lower_main "var b: bool; b = true && false;" in
  let has_cjump =
    Array.exists
      (function Ir.Icjump _ -> true | _ -> false)
      code.pc_instrs
  in
  Alcotest.(check bool) "&& uses a conditional jump" true has_cjump

let test_while_condition_calls_reextracted () =
  (* a call in a while condition must re-run on every iteration: the
     extraction must sit inside the loop (before the cjump, after the
     back-edge target) *)
  let source =
    "module t;\n\
     var i: int;\n\
     proc next(): int { i = i + 1; return i; }\n\
     proc main() { while (next() < 3) { skip; } }"
  in
  let program = Support.parse source in
  let code = Lower.lower_proc (Option.get (Ast.find_proc program "main")) in
  (* find the back jump and check its target is the call *)
  let back_target =
    Array.to_list code.pc_instrs
    |> List.filter_map (function Ir.Ijump t -> Some t | _ -> None)
    |> List.fold_left min max_int
  in
  match code.pc_instrs.(back_target) with
  | Ir.Icall { callee = "next"; _ } -> ()
  | instr ->
    Alcotest.failf "loop should re-enter at the call, got %s"
      (Fmt.str "%a" Ir.pp_instr instr)

let test_unresolved_goto_raises () =
  let program =
    Support.parse "module t;\nproc main() { goto nowhere; }"
  in
  (* (the typechecker rejects this, but lowering must also be safe) *)
  match Lower.lower_proc (Option.get (Ast.find_proc program "main")) with
  | exception Lower.Lower_error _ -> ()
  | _ -> Alcotest.fail "expected Lower_error"

let test_decl_with_init_assigns () =
  let code = lower_main "var x: int = 42; print(x);" in
  Alcotest.(check (list string)) "init is an assignment"
    [ "assign"; "print"; "return" ]
    (instr_names code)

let test_decl_without_init_emits_nothing () =
  let code = lower_main "var x: int; print(0);" in
  Alcotest.(check (list string)) "no instruction for bare decl"
    [ "print"; "return" ]
    (instr_names code);
  Alcotest.(check (list (pair string string))) "local recorded"
    [ ("x", "int") ]
    (List.map
       (fun (n, ty) -> (n, Dr_lang.Pretty.ty_to_string ty))
       code.pc_locals)

let test_lower_program_covers_all_procs () =
  let program =
    Support.parse "module t;\nproc f() { }\nproc g() { }\nproc main() { }"
  in
  let table = Lower.lower_program program in
  Alcotest.(check int) "three procs" 3 (Hashtbl.length table)

let () =
  Alcotest.run "lower"
    [ ( "shapes",
        [ Alcotest.test_case "implicit return" `Quick test_implicit_return;
          Alcotest.test_case "if/else" `Quick test_if_shape;
          Alcotest.test_case "if without else" `Quick test_if_without_else;
          Alcotest.test_case "while" `Quick test_while_shape;
          Alcotest.test_case "decl with init" `Quick test_decl_with_init_assigns;
          Alcotest.test_case "decl without init" `Quick
            test_decl_without_init_emits_nothing ] );
      ( "labels and gotos",
        [ Alcotest.test_case "label covers ANF prelude" `Quick
            test_label_covers_anf_prelude;
          Alcotest.test_case "goto into loop" `Quick test_goto_into_loop;
          Alcotest.test_case "unresolved goto" `Quick test_unresolved_goto_raises ] );
      ( "calls",
        [ Alcotest.test_case "ANF extraction" `Quick test_anf_extracts_nested_calls;
          Alcotest.test_case "short circuit" `Quick
            test_short_circuit_compiles_to_jumps;
          Alcotest.test_case "while-condition calls" `Quick
            test_while_condition_calls_reextracted ] );
      ( "program",
        [ Alcotest.test_case "all procs lowered" `Quick
            test_lower_program_covers_all_procs ] ) ]
