module Rg = Dr_analysis.Reconfig_graph

let build source points =
  match Rg.build (Support.parse source) ~points with
  | Ok g -> g
  | Error e -> Alcotest.failf "build failed: %s" e

let build_err source points =
  match Rg.build (Support.parse source) ~points with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> e

(* The paper's Fig. 6 shape: main calls a and b; a and b contain
   reconfiguration points R1 and R2; c is called but not on any path to a
   point. *)
let fig6 =
  {|
module fig6;

proc c() { }

proc a() {
  R1: skip;
  c();
}

proc b() {
  skip;
  R2: skip;
}

proc main() {
  a();
  c();
  b();
  a();
}
|}

let test_relevant_set () =
  let g = build fig6 [ ("a", "R1"); ("b", "R2") ] in
  Alcotest.(check (list string)) "a, b, main relevant (not c)"
    [ "a"; "b"; "main" ] g.relevant

let test_edge_numbering () =
  let g = build fig6 [ ("a", "R1"); ("b", "R2") ] in
  let describe = function
    | Rg.Call_edge { index; src; callee; ordinal; _ } ->
      Printf.sprintf "%d:%s->%s@%d" index src callee ordinal
    | Rg.Point_edge { index; src; rlabel; _ } ->
      Printf.sprintf "%d:%s->R[%s]" index src rlabel
  in
  (* program order: a (point R1), b (point R2), then main's call sites to
     a (ordinal 0), b (ordinal 2), a (ordinal 3) — c's site (ordinal 1)
     is skipped. *)
  Alcotest.(check (list string)) "edges"
    [ "1:a->R[R1]"; "2:b->R[R2]"; "3:main->a@0"; "4:main->b@2"; "5:main->a@3" ]
    (List.map describe g.edges)

let test_edges_from () =
  let g = build fig6 [ ("a", "R1"); ("b", "R2") ] in
  Alcotest.(check int) "main has three edges" 3
    (List.length (Rg.edges_from g "main"));
  Alcotest.(check int) "a has one edge" 1 (List.length (Rg.edges_from g "a"))

let test_monitor_numbering () =
  (* the monitor example's numbering: compute's self-call then R, then
     main's two calls — with main listed first, as in the paper's Fig. 3,
     edges are main:1, main:2, compute-call:3, R:4 *)
  let source =
    {|
module m;

proc main() {
  var r: float;
  while (true) {
    compute(4, 4, r);
    compute(1, 1, r);
  }
}

proc compute(num: int, n: int, ref rp: float) {
  if (n <= 0) { rp = 0.0; return; }
  compute(num, n - 1, rp);
  R: skip;
}
|}
  in
  let g = build source [ ("compute", "R") ] in
  let indexes =
    List.map
      (function
        | Rg.Call_edge { index; src; callee; _ } ->
          Printf.sprintf "%d:%s->%s" index src callee
        | Rg.Point_edge { index; src; _ } -> Printf.sprintf "%d:%s->R" index src)
      g.edges
  in
  Alcotest.(check (list string)) "paper-style numbering"
    [ "1:main->compute"; "2:main->compute"; "3:compute->compute"; "4:compute->R" ]
    indexes

let test_recursive_point_proc () =
  let g =
    build
      "module t;\nproc f(n: int) { if (n > 0) { f(n - 1); } R: skip; }\nproc main() { f(3); }"
      [ ("f", "R") ]
  in
  Alcotest.(check (list string)) "f and main" [ "f"; "main" ] g.relevant;
  Alcotest.(check int) "three edges (f self, f point, main call)" 3
    (List.length g.edges)

let test_unknown_proc () =
  let e = build_err fig6 [ ("nosuch", "R1") ] in
  Alcotest.(check bool) "mentions procedure" true
    (String.length e > 0 && e <> "")

let test_unknown_label () =
  let e = build_err fig6 [ ("a", "R9") ] in
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  Alcotest.(check bool) "mentions label" true (contains "no such label" e)

let test_no_main () =
  let e =
    build_err "module t;\nproc f() { R: skip; }" [ ("f", "R") ]
  in
  Alcotest.(check bool) "mentions main" true
    (let contains needle haystack =
       let n = String.length needle and h = String.length haystack in
       let rec go i =
         i + n <= h && (String.sub haystack i n = needle || go (i + 1))
       in
       n = 0 || go 0
     in
     contains "main" e)

let test_unreachable_point () =
  let e =
    build_err "module t;\nproc f() { R: skip; }\nproc main() { }" [ ("f", "R") ]
  in
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  Alcotest.(check bool) "mentions reachability" true
    (contains "not reachable" e)

let test_expression_call_rejected () =
  let e =
    build_err
      {|
module t;
proc f(): int { R: skip; return 1; }
proc main() { var x: int; x = f() + 1; }
|}
      [ ("f", "R") ]
  in
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  Alcotest.(check bool) "mentions expression position" true
    (contains "expression position" e)

let test_expression_call_off_path_ok () =
  (* an expression call to a procedure NOT on a path to any point is
     fine *)
  let g =
    build
      {|
module t;
proc pure(): int { return 1; }
proc f() { R: skip; }
proc main() { var x: int; x = pure(); f(); }
|}
      [ ("f", "R") ]
  in
  Alcotest.(check (list string)) "pure excluded" [ "f"; "main" ] g.relevant

let test_point_on_call_stmt () =
  (* a reconfiguration point labelling a call statement produces both a
     point edge and a call edge, point first *)
  let g =
    build
      "module t;\nproc g() { }\nproc f() { R: g(); R2: skip; }\nproc main() { f(); }"
      [ ("f", "R"); ("f", "R2") ]
  in
  (* g is not relevant (contains no point and reaches none) so R's call
     does not produce a call edge; check the point ordering anyway *)
  match g.edges with
  | Rg.Point_edge { index = 1; rlabel = "R"; _ }
    :: Rg.Point_edge { index = 2; rlabel = "R2"; _ } :: _ ->
    ()
  | _ -> Alcotest.fail "point edges missing or misordered"

let test_dot () =
  let g = build fig6 [ ("a", "R1"); ("b", "R2") ] in
  let dot = Rg.to_dot g in
  Alcotest.(check bool) "mentions reconfig node" true
    (let contains needle haystack =
       let n = String.length needle and h = String.length haystack in
       let rec go i =
         i + n <= h && (String.sub haystack i n = needle || go (i + 1))
       in
       n = 0 || go 0
     in
     contains "reconfig" dot)

let () =
  Alcotest.run "reconfig_graph"
    [ ( "construction",
        [ Alcotest.test_case "relevant set" `Quick test_relevant_set;
          Alcotest.test_case "edge numbering" `Quick test_edge_numbering;
          Alcotest.test_case "edges_from" `Quick test_edges_from;
          Alcotest.test_case "monitor numbering" `Quick test_monitor_numbering;
          Alcotest.test_case "recursive point proc" `Quick
            test_recursive_point_proc;
          Alcotest.test_case "point on call stmt" `Quick test_point_on_call_stmt ] );
      ( "validation",
        [ Alcotest.test_case "unknown proc" `Quick test_unknown_proc;
          Alcotest.test_case "unknown label" `Quick test_unknown_label;
          Alcotest.test_case "no main" `Quick test_no_main;
          Alcotest.test_case "unreachable point" `Quick test_unreachable_point;
          Alcotest.test_case "expression call rejected" `Quick
            test_expression_call_rejected;
          Alcotest.test_case "expression call off-path ok" `Quick
            test_expression_call_off_path_ok ] );
      ("output", [ Alcotest.test_case "dot" `Quick test_dot ]) ]
