let accepts name source =
  Alcotest.test_case name `Quick (fun () ->
      Support.typecheck_ok (Support.parse source))

let rejects name fragment source =
  Alcotest.test_case name `Quick (fun () ->
      let messages = Support.typecheck_errors (Support.parse source) in
      let contains needle haystack =
        let n = String.length needle and h = String.length haystack in
        let rec go i =
          i + n <= h && (String.sub haystack i n = needle || go (i + 1))
        in
        n = 0 || go 0
      in
      if not (List.exists (contains fragment) messages) then
        Alcotest.failf "no error mentioning %S among: %s" fragment
          (String.concat " | " messages))

let wrap body = Printf.sprintf "module t;\nproc main() {\n%s\n}" body

let accepted =
  [ accepts "arithmetic" (wrap "var x: int = 1 + 2 * 3; x = x % 4;");
    accepts "float arithmetic" (wrap "var f: float = 1.5 / 0.5;");
    accepts "conversions" (wrap "var f: float = float(3); var i: int = int(f);");
    accepts "bool ops" (wrap "var b: bool = true && (1 < 2) || !false;");
    accepts "string ops"
      (wrap {|var s: string = "a" ^ "b"; var b: bool = s == "ab";|});
    accepts "arrays"
      (wrap "var a: int[] = alloc_int(4); a[0] = 1; var n: int = len(a);");
    accepts "pointers"
      (wrap "var a: int[] = alloc_int(4); var p: int* = &a[1]; p[0] = 5; p = p + 1;");
    accepts "null comparisons"
      (wrap "var a: int[]; var b: bool = a == null; a = null;");
    accepts "labels and goto" (wrap "L: skip; goto L;");
    accepts "while condition" (wrap "var i: int; while (i < 10) { i = i + 1; }");
    accepts "sleep int and float" (wrap "sleep(1); sleep(0.5);");
    accepts "print anything" (wrap {|print("x=", 1, 2.0, true);|});
    accepts "ref param flow"
      "module t;\nproc f(ref out: int) { out = 3; }\nproc main() { var x: int; f(x); }";
    accepts "function call"
      "module t;\nproc sq(x: int): int { return x * x; }\nproc main() { var y: int = sq(3) + 1; }";
    accepts "recursion through ref"
      "module t;\nproc d(n: int, ref o: float) { if (n > 0) { d(n - 1, o); } }\nproc main() { var r: float; d(3, r); }";
    accepts "builtin statements"
      (wrap
         {|mh_init(); var x: int; mh_read("a", x); mh_write("b", x);
           var loc: int; mh_capture(1, x); mh_restore(loc, x);
           mh_encode(); mh_decode();|});
    accepts "signal with handler"
      "module t;\nproc h() { }\nproc main() { signal(\"h\"); }";
    accepts "local shadows global"
      "module t;\nvar x: int;\nproc main() { var x: float = 1.0; x = 2.0; }" ]

let rejected =
  [ rejects "unbound variable" "unbound variable y" (wrap "y = 1;");
    rejects "int/float mix" "arithmetic" (wrap "var x: int = 1 + 2.0;");
    rejects "mod on floats" "'%' expects int" (wrap "var f: float = 1.0 % 2.0;");
    rejects "bad condition" "expected" (wrap "if (1) { skip; }");
    rejects "cat on ints" "'^' expects string" (wrap "var s: string = 1 ^ 2;");
    rejects "compare mixed" "same type" (wrap "var b: bool = 1 == 1.0;");
    rejects "order bools" "ordering comparisons" (wrap "var b: bool = true < false;");
    rejects "index non-array" "cannot index" (wrap "var x: int; x[0] = 1;");
    rejects "null inference" "null where a value" (wrap "var x: int = null;");
    rejects "addr of scalar" "cannot take the address"
      (wrap "var x: int; var p: int* = &x[0];");
    rejects "goto unknown" "no such label" (wrap "goto nowhere;");
    rejects "duplicate label" "duplicate label" (wrap "L: skip; L: skip;");
    rejects "duplicate local" "duplicate declaration"
      (wrap "var x: int; if (true) { var x: int; }");
    rejects "duplicate param" "duplicate parameter"
      "module t;\nproc f(a: int, a: int) { }\nproc main() { }";
    rejects "duplicate proc" "duplicate procedure"
      "module t;\nproc f() { }\nproc f() { }\nproc main() { }";
    rejects "duplicate global" "duplicate global"
      "module t;\nvar g: int;\nvar g: int;\nproc main() { }";
    rejects "unknown proc" "undefined procedure" (wrap "nosuch(1);");
    rejects "arity" "expects 1 argument"
      "module t;\nproc f(a: int) { }\nproc main() { f(1, 2); }";
    rejects "arg type" "expected int"
      "module t;\nproc f(a: int) { }\nproc main() { f(1.5); }";
    rejects "ref needs variable" "must be a plain variable"
      "module t;\nproc f(ref a: int) { }\nproc main() { f(1 + 2); }";
    rejects "ref type mismatch" "ref parameter"
      "module t;\nproc f(ref a: int) { }\nproc main() { var x: float; f(x); }";
    rejects "void in expression" "returns no value"
      "module t;\nproc f() { }\nproc main() { var x: int = f(); }";
    rejects "return from void" "returns no value but"
      "module t;\nproc f() { return 1; }\nproc main() { }";
    rejects "missing return value" "must return a value"
      "module t;\nproc f(): int { return; }\nproc main() { }";
    rejects "return type" "expected int"
      "module t;\nproc f(): int { return 1.5; }\nproc main() { }";
    rejects "message must be scalar" "must be scalar"
      (wrap {|var a: int[] = alloc_int(2); mh_write("x", a);|});
    rejects "read target scalar" "scalar type"
      (wrap {|var a: int[]; mh_read("x", a);|});
    rejects "signal handler missing" "is not defined" (wrap {|signal("nope");|});
    rejects "signal handler shape" "no parameters"
      "module t;\nproc h(x: int) { }\nproc main() { signal(\"h\"); }";
    rejects "global initialiser with call" "may not call"
      "module t;\nproc f(): int { return 1; }\nvar g: int = f();\nproc main() { }";
    rejects "global initialiser type" "expected int"
      "module t;\nvar g: int = 1.5;\nproc main() { }";
    rejects "sleep type" "sleep expects" (wrap {|sleep("x");|}) ]

let test_locals_function_scoped () =
  (* A use before the declaration statement is fine: locals exist for the
     whole activation (C-style function scope, as the restore blocks
     require). *)
  Support.typecheck_ok
    (Support.parse "module t;\nproc main() { x = 1; var x: int; }")

let test_default_value_expr () =
  let module T = Dr_lang.Typecheck in
  let module A = Dr_lang.Ast in
  Alcotest.(check bool) "int" true (T.default_value_expr A.Tint = A.Int 0);
  Alcotest.(check bool) "float" true (T.default_value_expr A.Tfloat = A.Float 0.0);
  Alcotest.(check bool) "bool" true (T.default_value_expr A.Tbool = A.Bool false);
  Alcotest.(check bool) "str" true (T.default_value_expr A.Tstr = A.Str "");
  Alcotest.(check bool) "arr" true (T.default_value_expr (A.Tarr A.Tint) = A.Null)

let test_locals_of_proc () =
  let prog =
    Support.parse
      "module t;\nproc f() { var a: int; if (true) { var b: float; } while (false) { var c: string; } }\nproc main() { }"
  in
  match Dr_lang.Ast.find_proc prog "f" with
  | Some proc ->
    Alcotest.(check (list string)) "all nested locals" [ "a"; "b"; "c" ]
      (List.map fst (Dr_lang.Typecheck.locals_of_proc proc))
  | None -> Alcotest.fail "no f"

let () =
  Alcotest.run "typecheck"
    [ ("accepted", accepted);
      ("rejected", rejected);
      ( "semantics",
        [ Alcotest.test_case "function-scoped locals" `Quick
            test_locals_function_scoped;
          Alcotest.test_case "default values" `Quick test_default_value_expr;
          Alcotest.test_case "locals_of_proc" `Quick test_locals_of_proc ] ) ]
