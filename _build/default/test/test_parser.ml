module Ast = Dr_lang.Ast
module Parser = Dr_lang.Parser
module Pretty = Dr_lang.Pretty

let expr_eq = Alcotest.testable Pretty.pp_expr Ast.equal_expr

let check_expr name source expected =
  Alcotest.check expr_eq name expected (Parser.parse_expr source)

let test_precedence_arith () =
  check_expr "mul binds tighter" "1 + 2 * 3"
    (Binop (Add, Int 1, Binop (Mul, Int 2, Int 3)));
  check_expr "left assoc sub" "10 - 4 - 3"
    (Binop (Sub, Binop (Sub, Int 10, Int 4), Int 3));
  check_expr "parens" "(1 + 2) * 3" (Binop (Mul, Binop (Add, Int 1, Int 2), Int 3))

let test_precedence_bool () =
  check_expr "and over or" "a || b && c"
    (Binop (Or, Var "a", Binop (And, Var "b", Var "c")));
  check_expr "cmp over and" "x < 1 && y > 2"
    (Binop (And, Binop (Lt, Var "x", Int 1), Binop (Gt, Var "y", Int 2)));
  check_expr "not" "!a && b" (Binop (And, Unop (Not, Var "a"), Var "b"))

let test_concat_precedence () =
  check_expr "cat binds looser than add" {|"a" ^ str(1 + 2)|}
    (Binop (Cat, Str "a", Builtin ("str", [ Binop (Add, Int 1, Int 2) ])));
  check_expr "cmp over cat" {|"a" ^ "b" == "ab"|}
    (Binop (Eq, Binop (Cat, Str "a", Str "b"), Str "ab"))

let test_unary () =
  check_expr "neg" "-x" (Unop (Neg, Var "x"));
  check_expr "neg in product" "-x * y" (Binop (Mul, Unop (Neg, Var "x"), Var "y"));
  check_expr "double not" "!!b" (Unop (Not, Unop (Not, Var "b")))

let test_postfix_index () =
  check_expr "index" "a[i + 1]" (Index (Var "a", Binop (Add, Var "i", Int 1)));
  check_expr "nested index" "a[0][1]" (Index (Index (Var "a", Int 0), Int 1));
  check_expr "addr" "&a[2]" (Addr ("a", Int 2))

let test_calls_and_builtins () =
  check_expr "call" "f(1, x)" (Call ("f", [ Int 1; Var "x" ]));
  check_expr "builtin query" {|mh_query("in")|} (Builtin ("mh_query", [ Str "in" ]));
  check_expr "float conversion uses keyword" "float(3)"
    (Builtin ("float", [ Int 3 ]));
  check_expr "int conversion uses keyword" "int(3.5)"
    (Builtin ("int", [ Float 3.5 ]));
  check_expr "len" "len(a)" (Builtin ("len", [ Var "a" ]))

let parse_main body =
  let src = Printf.sprintf "module t;\nproc main() {\n%s\n}" body in
  match (Parser.parse_program src).procs with
  | [ { body; _ } ] -> body
  | _ -> Alcotest.fail "expected exactly one proc"

let test_stmt_forms () =
  (match parse_main "var x: int = 3;" with
  | [ { kind = Decl ("x", Tint, Some (Int 3)); _ } ] -> ()
  | _ -> Alcotest.fail "decl");
  (match parse_main "x[2] = 5;" with
  | [ { kind = Assign (Lindex ("x", Int 2), Int 5); _ } ] -> ()
  | _ -> Alcotest.fail "indexed assign");
  (match parse_main "L: goto L;" with
  | [ { label = Some "L"; kind = Goto "L"; _ } ] -> ()
  | _ -> Alcotest.fail "label+goto");
  (match parse_main "skip;" with
  | [ { kind = Skip; _ } ] -> ()
  | _ -> Alcotest.fail "skip");
  match parse_main "return 1 + 2;" with
  | [ { kind = Return (Some (Binop (Add, Int 1, Int 2))); _ } ] -> ()
  | _ -> Alcotest.fail "return"

let test_if_else_chain () =
  match parse_main "if (a) { skip; } else if (b) { skip; } else { skip; }" with
  | [ { kind = If (Var "a", [ _ ], [ { kind = If (Var "b", [ _ ], [ _ ]); _ } ]); _ } ]
    -> ()
  | _ -> Alcotest.fail "else-if chain shape"

let test_types () =
  let src = "module t;\nvar a: int[];\nvar p: float*;\nvar m: int[][];\nproc main() { }" in
  let prog = Parser.parse_program src in
  let ty_of name =
    match Ast.find_global prog name with
    | Some g -> g.gty
    | None -> Alcotest.failf "missing global %s" name
  in
  Alcotest.(check string) "arr" "int[]" (Pretty.ty_to_string (ty_of "a"));
  Alcotest.(check string) "ptr" "float*" (Pretty.ty_to_string (ty_of "p"));
  Alcotest.(check string) "arr arr" "int[][]" (Pretty.ty_to_string (ty_of "m"))

let test_params () =
  let src = "module t;\nproc f(a: int, ref b: float) { }\nproc main() { }" in
  match (Parser.parse_program src).procs with
  | [ { params = [ p1; p2 ]; _ }; _ ] ->
    Alcotest.(check bool) "a by value" false p1.pref;
    Alcotest.(check bool) "b by ref" true p2.pref
  | _ -> Alcotest.fail "params"

let test_builtin_stmt_out_args () =
  (match parse_main {|mh_read("in", x);|} with
  | [ { kind = BuiltinS ("mh_read", [ Aexpr (Str "in"); Alv (Lvar "x") ]); _ } ]
    -> ()
  | _ -> Alcotest.fail "mh_read out arg");
  match parse_main "mh_restore(loc, a, b[0]);" with
  | [ { kind =
          BuiltinS
            ( "mh_restore",
              [ Alv (Lvar "loc"); Alv (Lvar "a"); Alv (Lindex ("b", Int 0)) ] );
        _ } ] ->
    ()
  | _ -> Alcotest.fail "mh_restore all lvalues"

let check_parse_error name source fragment =
  match Parser.parse_program source with
  | exception Parser.Error (message, _) ->
    let contains needle haystack =
      let n = String.length needle and h = String.length haystack in
      let rec go i =
        i + n <= h && (String.sub haystack i n = needle || go (i + 1))
      in
      n = 0 || go 0
    in
    if not (contains fragment message) then
      Alcotest.failf "%s: error %S lacks %S" name message fragment
  | _ -> Alcotest.failf "%s: expected parse error" name

let test_errors () =
  check_parse_error "missing semi" "module t;\nproc main() { skip }" "expected";
  check_parse_error "missing module" "proc main() { }" "expected module";
  check_parse_error "builtin as stmt misuse" "module t;\nproc main() { mh_query(\"x\"); }"
    "expression, not a statement";
  check_parse_error "bad out arg" "module t;\nproc main() { mh_read(\"i\", 1 + 2); }"
    "must be a variable";
  check_parse_error "bad arity" "module t;\nproc main() { mh_write(\"i\"); }"
    "argument";
  check_parse_error "trailing garbage" "module t;\nproc main() { } }" "expected"

let prop_roundtrip_expr =
  Support.qcheck ~count:500 "print/parse round-trips expressions" Gen.expr
    (fun e ->
      let printed = Pretty.expr_to_string e in
      match Parser.parse_expr printed with
      | reparsed -> Ast.equal_expr e reparsed
      | exception _ ->
        QCheck2.Test.fail_reportf "failed to reparse %S" printed)

let prop_roundtrip_program =
  Support.qcheck ~count:300 "print/parse round-trips programs" Gen.program
    (fun p ->
      let printed = Pretty.program_to_string p in
      match Parser.parse_program printed with
      | reparsed -> Ast.equal_program p reparsed
      | exception e ->
        QCheck2.Test.fail_reportf "failed to reparse:\n%s\n%s" printed
          (Printexc.to_string e))

let () =
  Alcotest.run "parser"
    [ ( "expressions",
        [ Alcotest.test_case "arith precedence" `Quick test_precedence_arith;
          Alcotest.test_case "bool precedence" `Quick test_precedence_bool;
          Alcotest.test_case "concat precedence" `Quick test_concat_precedence;
          Alcotest.test_case "unary" `Quick test_unary;
          Alcotest.test_case "index/addr" `Quick test_postfix_index;
          Alcotest.test_case "calls/builtins" `Quick test_calls_and_builtins ] );
      ( "statements",
        [ Alcotest.test_case "forms" `Quick test_stmt_forms;
          Alcotest.test_case "else-if" `Quick test_if_else_chain;
          Alcotest.test_case "types" `Quick test_types;
          Alcotest.test_case "params" `Quick test_params;
          Alcotest.test_case "builtin out args" `Quick test_builtin_stmt_out_args ] );
      ("errors", [ Alcotest.test_case "diagnostics" `Quick test_errors ]);
      ("properties", [ prop_roundtrip_expr; prop_roundtrip_program ]) ]
