module Machine = Dr_interp.Machine
module Value = Dr_state.Value

let wrap body = Printf.sprintf "module t;\nproc main() {\n%s\n}" body

let check_prints name expected source =
  Alcotest.(check (list string)) name expected (Support.prints_of source)

let expect_crash name fragment source =
  let sio = Support.script_io () in
  let machine = Machine.create ~io:sio.io (Support.parse source) in
  Machine.run ~max_steps:1_000_000 machine;
  match Machine.status machine with
  | Machine.Crashed message ->
    let contains needle haystack =
      let n = String.length needle and h = String.length haystack in
      let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
      n = 0 || go 0
    in
    if not (contains fragment message) then
      Alcotest.failf "%s: crash %S lacks %S" name message fragment
  | status -> Alcotest.failf "%s: expected crash, got %a" name Machine.pp_status status

let test_arithmetic () =
  check_prints "ints" [ "17" ] (wrap "print(1 + 2 * 8);");
  check_prints "division" [ "3" ] (wrap "print(7 / 2);");
  check_prints "modulo" [ "1" ] (wrap "print(7 % 2);");
  check_prints "floats" [ "2.5" ] (wrap "print(1.25 * 2.0);");
  check_prints "neg" [ "-4" ] (wrap "print(-(2 + 2));");
  (* floats follow IEEE 754: division by zero yields infinities, not a
     crash (only integer division faults) *)
  check_prints "float infinities" [ "inf -inf" ]
    (wrap "print(1.0 / 0.0, \" \", -1.0 / 0.0);");
  check_prints "conversions" [ "3 3" ]
    (wrap {|print(int(3.9), " ", float(3));|})

let test_comparisons_and_bools () =
  check_prints "lt" [ "true false" ] (wrap {|print(1 < 2, " ", 2.0 < 1.0);|});
  check_prints "strings" [ "true" ] (wrap {|print("abc" < "abd");|});
  check_prints "eq" [ "true false" ] (wrap {|print(3 == 3, " ", "a" == "b");|});
  check_prints "not" [ "false" ] (wrap "print(!true);")

let test_short_circuit () =
  (* the right operand of && must not run when the left is false:
     division by zero would crash *)
  check_prints "and skips rhs" [ "false" ]
    (wrap "var x: int = 0; print(x != 0 && 10 / x > 1);");
  check_prints "or skips rhs" [ "true" ]
    (wrap "var x: int = 0; print(x == 0 || 10 / x > 1);")

let test_strings () =
  check_prints "concat" [ "ab" ] (wrap {|print("a" ^ "b");|});
  check_prints "str builtin" [ "x=5|2.5|true" ]
    (wrap {|print("x=" ^ str(5) ^ "|" ^ str(2.5) ^ "|" ^ str(true));|})

let test_control_flow () =
  check_prints "if else" [ "else" ]
    (wrap {|if (1 > 2) { print("then"); } else { print("else"); }|});
  check_prints "while" [ "0"; "1"; "2" ]
    (wrap "var i: int; while (i < 3) { print(i); i = i + 1; }");
  check_prints "nested loops" [ "4" ]
    (wrap
       "var c: int; var i: int; var j: int;\n\
        i = 0; while (i < 2) { j = 0; while (j < 2) { c = c + 1; j = j + 1; } i = i + 1; }\n\
        print(c);")

let test_goto () =
  check_prints "goto forward" [ "a"; "c" ]
    (wrap {|print("a"); goto L; print("b"); L: print("c");|});
  check_prints "goto into loop body" [ "5"; "6"; "7" ]
    (wrap
       "var i: int;\n\
        i = 5;\n\
        goto Inside;\n\
        while (i < 8) {\n\
        Inside: print(i);\n\
        i = i + 1;\n\
        }");
  check_prints "goto backward loop" [ "0"; "1"; "2" ]
    (wrap
       "var i: int;\n\
        L: if (i < 3) { print(i); i = i + 1; goto L; }")

let test_procedures () =
  check_prints "value return" [ "9" ]
    "module t;\nproc sq(x: int): int { return x * x; }\nproc main() { print(sq(3)); }";
  check_prints "ref out" [ "7" ]
    "module t;\nproc add(a: int, b: int, ref out: int) { out = a + b; }\nproc main() { var r: int; add(3, 4, r); print(r); }";
  check_prints "recursion" [ "120" ]
    "module t;\nproc fact(n: int): int { if (n <= 1) { return 1; } return n * fact(n - 1); }\nproc main() { print(fact(5)); }";
  check_prints "mutual recursion" [ "true false" ]
    "module t;\n\
     proc is_even(n: int): bool { if (n == 0) { return true; } return is_odd(n - 1); }\n\
     proc is_odd(n: int): bool { if (n == 0) { return false; } return is_even(n - 1); }\n\
     proc main() { print(is_even(10), \" \", is_even(7)); }";
  check_prints "ref threads through calls" [ "6" ]
    "module t;\n\
     proc inner(ref x: int) { x = x + 1; }\n\
     proc outer(ref x: int) { inner(x); inner(x); }\n\
     proc main() { var v: int = 4; outer(v); print(v); }"

let test_call_in_expressions () =
  check_prints "nested calls" [ "11" ]
    "module t;\nproc f(x: int): int { return x + 1; }\nproc main() { print(f(f(f(8)))); }";
  check_prints "calls in operands" [ "7" ]
    "module t;\nproc f(x: int): int { return x; }\nproc main() { print(f(3) + f(4)); }";
  check_prints "call in while condition" [ "0"; "1"; "2" ]
    "module t;\n\
     var i: int;\n\
     proc next(): int { i = i + 1; return i; }\n\
     proc main() { while (next() <= 3) { print(i - 1); } }"

let test_globals () =
  check_prints "global init and update" [ "10"; "11" ]
    "module t;\nvar g: int = 10;\nproc bump() { g = g + 1; }\nproc main() { print(g); bump(); print(g); }"

let test_heap () =
  check_prints "array basics" [ "3 30" ]
    (wrap
       "var a: int[] = alloc_int(3); a[0] = 10; a[1] = 20; a[2] = a[0] + a[1];\n\
        print(len(a), \" \", a[2]);");
  check_prints "zero initialised" [ "0 0  false" ]
    (wrap
       {|var a: int[] = alloc_int(1); var f: float[] = alloc_float(1);
         var s: string[] = alloc_str(1); var b: bool[] = alloc_bool(1);
         print(a[0], " ", f[0], " ", s[0], " ", b[0]);|});
  check_prints "pointers" [ "20 0" ]
    (wrap
       "var a: int[] = alloc_int(3); a[1] = 20;\n\
        var p: int* = &a[1];\n\
        print(p[0], \" \", 0);")

let test_pointer_arithmetic () =
  check_prints "ptr add" [ "30" ]
    (wrap
       "var a: int[] = alloc_int(4); a[3] = 30;\n\
        var p: int* = &a[1];\n\
        p = p + 2;\n\
        print(p[0]);");
  check_prints "ptr writes alias array" [ "77" ]
    (wrap
       "var a: int[] = alloc_int(2);\n\
        var p: int* = &a[0];\n\
        p[1] = 77;\n\
        print(a[1]);")

let test_runtime_errors () =
  expect_crash "div by zero" "division by zero" (wrap "print(1 / 0);");
  expect_crash "mod by zero" "modulo by zero" (wrap "print(1 % 0);");
  expect_crash "index oob" "out of bounds"
    (wrap "var a: int[] = alloc_int(2); print(a[5]);");
  expect_crash "negative index" "out of bounds"
    (wrap "var a: int[] = alloc_int(2); print(a[0 - 1]);");
  expect_crash "null deref" "null" (wrap "var a: int[]; print(a[0]);");
  expect_crash "ptr oob" "out of bounds"
    (wrap "var a: int[] = alloc_int(2); var p: int* = &a[0]; print(p[5]);");
  expect_crash "negative alloc" "negative allocation"
    (wrap "var a: int[] = alloc_int(0 - 3);");
  expect_crash "stack overflow" "stack overflow"
    "module t;\nproc f() { f(); }\nproc main() { f(); }";
  expect_crash "missing return" "without returning"
    "module t;\nproc f(): int { if (false) { return 1; } }\nproc main() { print(f()); }"

let test_sleep_sets_status () =
  let sio = Support.script_io () in
  let machine = Machine.create ~io:sio.io (Support.parse (wrap "sleep(3); print(\"x\");")) in
  Machine.run ~max_steps:1000 machine;
  (match Machine.status machine with
  | Machine.Sleeping d -> Alcotest.(check (float 1e-9)) "duration" 3.0 d
  | s -> Alcotest.failf "expected sleeping, got %a" Machine.pp_status s);
  Machine.set_ready machine;
  Machine.run ~max_steps:1000 machine;
  Alcotest.(check (list string)) "resumed after sleep" [ "x" ] (Support.printed sio)

let test_blocking_read () =
  let sio = Support.script_io () in
  let machine =
    Machine.create ~io:sio.io
      (Support.parse (wrap {|var x: int; mh_read("in", x); print(x);|}))
  in
  Machine.run ~max_steps:1000 machine;
  (match Machine.status machine with
  | Machine.Blocked_read "in" -> ()
  | s -> Alcotest.failf "expected blocked, got %a" Machine.pp_status s);
  Support.feed sio "in" (Value.Vint 42);
  Machine.set_ready machine;
  Machine.run ~max_steps:1000 machine;
  Alcotest.(check (list string)) "read value" [ "42" ] (Support.printed sio)

let test_query_and_write () =
  let sio = Support.script_io ~feeds:[ ("in", [ Value.Vint 5 ]) ] () in
  let machine =
    Machine.create ~io:sio.io
      (Support.parse
         (wrap
            {|var x: int;
              if (mh_query("in")) { mh_read("in", x); mh_write("out", x * 2); }
              print(mh_query("in"));|}))
  in
  Machine.run ~max_steps:1000 machine;
  Alcotest.(check (list string)) "query now empty" [ "false" ] (Support.printed sio);
  Alcotest.(check (list (pair string Support.value))) "written"
    [ ("out", Value.Vint 10) ] (Support.written sio)

let test_signal_handler () =
  let source =
    "module t;\n\
     var hits: int = 0;\n\
     proc on_sig() { hits = hits + 1; }\n\
     proc main() {\n\
     var i: int;\n\
     signal(\"on_sig\");\n\
     while (i < 10) { i = i + 1; }\n\
     print(hits);\n\
     }"
  in
  let sio = Support.script_io () in
  let machine = Machine.create ~io:sio.io (Support.parse source) in
  (* no signal: handler never runs *)
  Machine.run ~max_steps:10_000 machine;
  Alcotest.(check (list string)) "no signal" [ "0" ] (Support.printed sio);
  (* with a signal mid-run *)
  let sio2 = Support.script_io () in
  let m2 = Machine.create ~io:sio2.io (Support.parse source) in
  Machine.run ~max_steps:10 m2;
  Machine.deliver_signal m2;
  Machine.run ~max_steps:10_000 m2;
  Alcotest.(check (list string)) "one signal" [ "1" ] (Support.printed sio2)

let test_signal_without_handler_ignored () =
  let sio = Support.script_io () in
  let machine =
    Machine.create ~io:sio.io
      (Support.parse (wrap "var i: int; while (i < 5) { i = i + 1; } print(i);"))
  in
  Machine.deliver_signal machine;
  Machine.run ~max_steps:10_000 machine;
  Alcotest.(check (list string)) "runs unharmed" [ "5" ] (Support.printed sio);
  Alcotest.(check bool) "halted" true (Machine.status machine = Machine.Halted)

let test_instr_count_and_stack () =
  let source =
    "module t;\nproc f(n: int) { if (n > 0) { f(n - 1); } else { sleep(100); } }\nproc main() { f(3); }"
  in
  let sio = Support.script_io () in
  let machine = Machine.create ~io:sio.io (Support.parse source) in
  Machine.run ~max_steps:10_000 machine;
  Alcotest.(check bool) "sleeping deep" true
    (match Machine.status machine with Machine.Sleeping _ -> true | _ -> false);
  Alcotest.(check int) "stack depth" 5 (Machine.stack_depth machine);
  Alcotest.(check (list string)) "stack procs" [ "f"; "f"; "f"; "f"; "main" ]
    (Machine.stack_procs machine);
  Alcotest.(check bool) "instructions counted" true (Machine.instr_count machine >= 9)

let test_clone_independent () =
  let source = wrap "var i: int; while (i < 100) { i = i + 1; } print(i);" in
  let sio = Support.script_io () in
  let machine = Machine.create ~io:sio.io (Support.parse source) in
  Machine.run ~max_steps:50 machine;
  let sio2 = Support.script_io () in
  let copy = Machine.clone machine ~io:sio2.io in
  (* both finish independently with the same output *)
  Machine.run ~max_steps:100_000 machine;
  Machine.run ~max_steps:100_000 copy;
  Alcotest.(check (list string)) "original" [ "100" ] (Support.printed sio);
  Alcotest.(check (list string)) "clone" [ "100" ] (Support.printed sio2)

let test_clone_preserves_ref_aliasing () =
  let source =
    "module t;\n\
     proc bump(ref x: int) { x = x + 1; sleep(50); x = x + 1; print(x); }\n\
     proc main() { var v: int = 0; bump(v); print(v); }"
  in
  let sio = Support.script_io () in
  let machine = Machine.create ~io:sio.io (Support.parse source) in
  Machine.run ~max_steps:10_000 machine;
  (* machine is asleep inside bump; clone and finish the clone *)
  let sio2 = Support.script_io () in
  let copy = Machine.clone machine ~io:sio2.io in
  Machine.set_ready copy;
  Machine.run ~max_steps:10_000 copy;
  (* if aliasing survived the clone, bump's writes reach main's v: 2 2 *)
  Alcotest.(check (list string)) "aliasing preserved" [ "2"; "2" ]
    (Support.printed sio2)

let test_state_size_grows () =
  let small = Machine.create ~io:(Dr_interp.Io_intf.null ()) (Support.parse (wrap "skip;")) in
  let big =
    Machine.create ~io:(Dr_interp.Io_intf.null ())
      (Support.parse (wrap "var a: int[] = alloc_int(1000); sleep(1);"))
  in
  Machine.run ~max_steps:10_000 big;
  Alcotest.(check bool) "heap grows state" true
    (Machine.state_size big > Machine.state_size small)

let test_no_main () =
  let machine =
    Machine.create ~io:(Dr_interp.Io_intf.null ()) (Support.parse "module t;\nproc f() { }")
  in
  match Machine.status machine with
  | Machine.Crashed _ -> ()
  | s -> Alcotest.failf "expected crash, got %a" Machine.pp_status s

let test_restore_empty_buffer_crashes () =
  let sio = Support.script_io () in
  let machine =
    Machine.create ~io:sio.io
      (Support.parse (wrap "var loc: int; var x: int; mh_restore(loc, x);"))
  in
  Machine.run ~max_steps:1000 machine;
  match Machine.status machine with
  | Machine.Crashed message ->
    Alcotest.(check bool) "mentions empty buffer" true
      (let contains needle haystack =
         let n = String.length needle and h = String.length haystack in
         let rec go i =
           i + n <= h && (String.sub haystack i n = needle || go (i + 1))
         in
         n = 0 || go 0
       in
       contains "empty" message)
  | s -> Alcotest.failf "expected crash, got %a" Machine.pp_status s

let test_encode_without_capture_is_empty_image () =
  let sio = Support.script_io () in
  let machine =
    Machine.create ~io:sio.io (Support.parse (wrap "mh_encode();"))
  in
  Machine.run ~max_steps:1000 machine;
  match sio.divulged with
  | [ image ] ->
    Alcotest.(check int) "zero records" 0 (Dr_state.Image.depth image)
  | images -> Alcotest.failf "expected one image, got %d" (List.length images)

let test_capture_then_restore_within_one_machine () =
  (* mh_capture fills the capture buffer; mh_encode flushes it; a
     machine can be fed its own image back and restore from it *)
  let source =
    wrap
      {|var loc: int; var x: int; var y: float;
        x = 7; y = 2.5;
        mh_capture(3, x, y);
        mh_encode();
        x = 0; y = 0.0;
        mh_decode();
        mh_restore(loc, x, y);
        print(loc, " ", x, " ", y);|}
  in
  let sio = Support.script_io () in
  let machine = Machine.create ~io:sio.io (Support.parse source) in
  Machine.run ~max_steps:1000 machine;
  (match Machine.status machine with
  | Machine.Blocked_decode -> ()
  | s -> Alcotest.failf "expected blocked-decode, got %a" Machine.pp_status s);
  (match sio.divulged with
  | [ image ] -> Machine.feed_image machine image
  | _ -> Alcotest.fail "no image");
  Machine.run ~max_steps:1000 machine;
  Alcotest.(check (list string)) "round-tripped" [ "3 7 2.5" ]
    (Support.printed sio)

let test_double_signal_single_handler_run () =
  let source =
    "module t;\n\
     var hits: int = 0;\n\
     proc on_sig() { hits = hits + 1; }\n\
     proc main() {\n\
     var i: int;\n\
     signal(\"on_sig\");\n\
     while (i < 20) { i = i + 1; }\n\
     print(hits);\n\
     }"
  in
  let sio = Support.script_io () in
  let machine = Machine.create ~io:sio.io (Support.parse source) in
  Machine.run ~max_steps:8 machine;
  Machine.deliver_signal machine;
  Machine.deliver_signal machine;  (* coalesces, like a Unix signal *)
  Machine.run ~max_steps:10_000 machine;
  Alcotest.(check (list string)) "one handler run" [ "1" ] (Support.printed sio)

let () =
  Alcotest.run "interp"
    [ ( "expressions",
        [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "comparisons" `Quick test_comparisons_and_bools;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "strings" `Quick test_strings ] );
      ( "control",
        [ Alcotest.test_case "if/while" `Quick test_control_flow;
          Alcotest.test_case "goto" `Quick test_goto ] );
      ( "procedures",
        [ Alcotest.test_case "calls" `Quick test_procedures;
          Alcotest.test_case "calls in expressions" `Quick test_call_in_expressions;
          Alcotest.test_case "globals" `Quick test_globals ] );
      ( "heap",
        [ Alcotest.test_case "arrays" `Quick test_heap;
          Alcotest.test_case "pointer arithmetic" `Quick test_pointer_arithmetic ] );
      ( "failures",
        [ Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
          Alcotest.test_case "no main" `Quick test_no_main ] );
      ( "scheduling",
        [ Alcotest.test_case "sleep" `Quick test_sleep_sets_status;
          Alcotest.test_case "blocking read" `Quick test_blocking_read;
          Alcotest.test_case "query/write" `Quick test_query_and_write;
          Alcotest.test_case "signal handler" `Quick test_signal_handler;
          Alcotest.test_case "signal ignored without handler" `Quick
            test_signal_without_handler_ignored;
          Alcotest.test_case "instr count and stack" `Quick
            test_instr_count_and_stack ] );
      ( "machine state",
        [ Alcotest.test_case "clone independent" `Quick test_clone_independent;
          Alcotest.test_case "clone ref aliasing" `Quick
            test_clone_preserves_ref_aliasing;
          Alcotest.test_case "state size" `Quick test_state_size_grows ] );
      ( "capture runtime",
        [ Alcotest.test_case "restore on empty buffer" `Quick
            test_restore_empty_buffer_crashes;
          Alcotest.test_case "encode without capture" `Quick
            test_encode_without_capture_is_empty_image;
          Alcotest.test_case "self round-trip" `Quick
            test_capture_then_restore_within_one_machine;
          Alcotest.test_case "signals coalesce" `Quick
            test_double_signal_single_handler_run ] ) ]
