(* Cross-cutting behavioural scenarios beyond the single-feature suites:
   multiple reconfiguration points, deep non-recursive call chains,
   signals during restoration, and repeated randomised reconfigurations
   of a live application. *)

module I = Dr_transform.Instrument
module Machine = Dr_interp.Machine
module Value = Dr_state.Value
module Bus = Dr_bus.Bus

(* ------------------------------------------------ multiple points *)

(* Two points in two different procedures: whichever the module reaches
   first after the signal performs the capture, and restoration resumes
   at the right one. *)
let two_points_source =
  {|
module twopoints;

var phase: int = 0;
var ticks: int = 0;

proc in_a() {
  Ra: ticks = ticks + 1;
  sleep(1);
}

proc in_b() {
  Rb: ticks = ticks + 10;
  sleep(1);
}

proc main() {
  mh_init();
  while (true) {
    phase = 1;
    in_a();
    phase = 2;
    in_b();
  }
}
|}

let prepare_two_points () =
  (Support.prepare two_points_source
     [ Support.point "in_a" "Ra"; Support.point "in_b" "Rb" ])
    .I
    .prepared_program

let capture_after program steps =
  let sio = Support.script_io () in
  let m = Machine.create ~io:sio.Support.io program in
  Machine.run ~max_steps:steps m;
  Machine.deliver_signal m;
  Machine.set_ready m;
  (* keep waking through sleeps until the capture happens *)
  let guard = ref 0 in
  while Machine.status m <> Machine.Halted && !guard < 10_000 do
    Machine.set_ready m;
    Machine.run ~max_steps:1_000 m;
    incr guard
  done;
  match sio.Support.divulged with
  | [ image ] -> image
  | images -> Alcotest.failf "expected one image, got %d" (List.length images)

let restore_and_observe program image =
  let sio = Support.script_io () in
  let clone = Machine.create ~status_attr:"clone" ~io:sio.Support.io program in
  Machine.feed_image clone image;
  Machine.run ~max_steps:10_000 clone;
  clone

let test_two_points_both_capture () =
  let program = prepare_two_points () in
  (* different interruption offsets reach different points *)
  let locations =
    List.map
      (fun steps ->
        let image = capture_after program steps in
        match image.Dr_state.Image.records with
        | first :: _ -> first.location
        | [] -> Alcotest.fail "empty image")
      [ 5; 12; 19; 26; 33 ]
  in
  let distinct = List.sort_uniq compare locations in
  Alcotest.(check bool) "captures happened at more than one point" true
    (List.length distinct >= 2)

let test_two_points_restore_each () =
  let program = prepare_two_points () in
  List.iter
    (fun steps ->
      let image = capture_after program steps in
      let clone = restore_and_observe program image in
      (* the clone must be alive (sleeping inside one of the procs) with
         a two-frame stack *)
      (match Machine.status clone with
      | Machine.Sleeping _ -> ()
      | s -> Alcotest.failf "clone not resumed: %a" Machine.pp_status s);
      Alcotest.(check int) "stack rebuilt" 2 (Machine.stack_depth clone))
    [ 5; 12; 19; 26 ]

(* --------------------------------------- three-procedure call chain *)

let chain_source =
  {|
module chain;

var log_count: int = 0;

proc deepest(x: int, ref out: int) {
  var local_c: int;
  local_c = x * 100;
  while (true) {
    R: out = out + local_c;
    sleep(1);
  }
}

proc middle(x: int, ref out: int) {
  var local_b: int;
  local_b = x + 7;
  deepest(local_b, out);
}

proc top(x: int, ref out: int) {
  var local_a: int;
  local_a = x * 2;
  middle(local_a, out);
}

proc main() {
  var acc: int;
  mh_init();
  top(3, acc);
}
|}

let test_chain_capture_restores_distinct_procs () =
  let prepared =
    (Support.prepare chain_source [ Support.point "deepest" "R" ]).I
      .prepared_program
  in
  let sio = Support.script_io () in
  let m = Machine.create ~io:sio.Support.io prepared in
  Machine.run ~max_steps:100_000 m;
  Alcotest.(check (list string)) "stack before capture"
    [ "deepest"; "middle"; "top"; "main" ]
    (Machine.stack_procs m);
  Machine.deliver_signal m;
  Machine.set_ready m;
  Machine.run ~max_steps:100_000 m;
  let image = List.hd sio.Support.divulged in
  Alcotest.(check int) "four records" 4 (Dr_state.Image.depth image);
  let clone = restore_and_observe prepared image in
  Alcotest.(check (list string)) "stack rebuilt across three procedures"
    [ "deepest"; "middle"; "top"; "main" ]
    (Machine.stack_procs clone);
  (* locals recomputed state is irrelevant: values were restored, so the
     clone's deepest frame still adds x*100 = (3*2+7)*100 = 1300/tick *)
  Machine.set_ready clone;
  Machine.run ~max_steps:10_000 clone;
  match Machine.read_local clone "local_c" with
  | Some (Value.Vint 1300) -> ()
  | v ->
    Alcotest.failf "local_c wrong after restore: %s"
      (match v with Some v -> Value.to_string v | None -> "missing")

(* ------------------------------------ signal during restoration *)

let test_signal_during_restore_is_safe () =
  (* the clone installs its handler only when restoration completes
     (Fig. 4): a signal arriving mid-restore is ignored rather than
     corrupting the rebuild *)
  let prepared =
    (Support.prepare chain_source [ Support.point "deepest" "R" ]).I
      .prepared_program
  in
  let sio = Support.script_io () in
  let m = Machine.create ~io:sio.Support.io prepared in
  Machine.run ~max_steps:100_000 m;
  Machine.deliver_signal m;
  Machine.set_ready m;
  Machine.run ~max_steps:100_000 m;
  let image = List.hd sio.Support.divulged in
  let sio2 = Support.script_io () in
  let clone = Machine.create ~status_attr:"clone" ~io:sio2.Support.io prepared in
  Machine.feed_image clone image;
  (* deliver the signal after a handful of restore instructions *)
  Machine.run ~max_steps:5 clone;
  Machine.deliver_signal clone;
  Machine.run ~max_steps:100_000 clone;
  (match Machine.status clone with
  | Machine.Sleeping _ -> ()
  | s -> Alcotest.failf "clone harmed by mid-restore signal: %a" Machine.pp_status s);
  Alcotest.(check int) "stack intact" 4 (Machine.stack_depth clone);
  (* after restoration the handler is live: a new signal captures *)
  Machine.deliver_signal clone;
  Machine.set_ready clone;
  Machine.run ~max_steps:100_000 clone;
  Alcotest.(check int) "second capture works" 1 (List.length sio2.Support.divulged)

(* --------------------------------------------- randomised chaos *)

let test_pipeline_chaos () =
  (* repeatedly migrate/replace random pipeline stages while the stream
     flows; the sink must still see the exact expected sequence *)
  let system = Dr_workloads.Pipeline.load () in
  let bus = Dr_workloads.Pipeline.start system in
  let prng = Dr_sim.Prng.create ~seed:2026 in
  let stage_of = Hashtbl.create 4 in
  Hashtbl.replace stage_of "scale" "scale";
  Hashtbl.replace stage_of "offset" "offset";
  let generation = ref 0 in
  for _round = 1 to 6 do
    Bus.run_while bus ~max_events:2_000_000 (fun () ->
        List.length (Dr_workloads.Pipeline.sink_values bus)
        < (!generation + 1) * 3);
    let key = if Dr_sim.Prng.bool prng then "scale" else "offset" in
    let current = Hashtbl.find stage_of key in
    incr generation;
    let fresh = Printf.sprintf "%s_g%d" key !generation in
    let host =
      List.nth [ "hostA"; "hostB"; "hostC" ] (Dr_sim.Prng.int prng 3)
    in
    (match
       Dynrecon.System.migrate bus ~instance:current ~new_instance:fresh
         ~new_host:host
     with
    | Ok _ -> Hashtbl.replace stage_of key fresh
    | Error e -> Alcotest.failf "round %d: migrate %s: %s" !generation current e)
  done;
  Bus.run_while bus ~max_events:3_000_000 (fun () ->
      List.length (Dr_workloads.Pipeline.sink_values bus) < 24);
  let values = Dr_workloads.Pipeline.sink_values bus in
  Alcotest.(check (list int)) "stream exact through 6 random migrations"
    (Dr_workloads.Pipeline.expected_prefix (List.length values))
    values

let test_monitor_rapid_sequential_migrations () =
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  let current = ref "compute" in
  for g = 1 to 5 do
    Bus.run ~until:(Bus.now bus +. 15.0) bus;
    let fresh = Printf.sprintf "compute_g%d" g in
    let host = List.nth [ "hostA"; "hostB"; "hostC" ] (g mod 3) in
    (match
       Dynrecon.System.migrate bus ~instance:!current ~new_instance:fresh
         ~new_host:host
     with
    | Ok _ -> current := fresh
    | Error e -> Alcotest.failf "migration %d: %s" g e)
  done;
  Bus.run ~until:(Bus.now bus +. 30.0) bus;
  let avgs =
    List.filter_map Dr_workloads.Monitor.parse_displayed
      (Bus.outputs bus ~instance:"display")
  in
  Alcotest.(check bool) "still producing" true (List.length avgs >= 5);
  Alcotest.(check bool) "all correct through five generations" true
    (Dr_workloads.Monitor.averages_plausible ~n:4 (List.map snd avgs))

let test_concurrent_reconfigurations () =
  (* two scripts in flight at once: migrate compute (participating)
     while sensor is swapped statelessly; both complete and the app
     keeps producing *)
  let system = Dr_workloads.Monitor.load () in
  let bus = Dr_workloads.Monitor.start system in
  Bus.run ~until:15.0 bus;
  let migrate_result = ref None in
  Dr_reconfig.Script.migrate bus ~instance:"compute" ~new_instance:"c2"
    ~new_host:"hostB"
    ~on_done:(fun r -> migrate_result := Some r)
    ();
  (* stateless replace completes synchronously while the migration is
     still waiting for compute's reconfiguration point *)
  (match
     Dr_reconfig.Script.replace_stateless bus ~instance:"sensor"
       ~new_instance:"sensor2" ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "stateless: %s" e);
  Alcotest.(check bool) "migration still pending" true (!migrate_result = None);
  Bus.run_while bus ~max_events:2_000_000 (fun () -> !migrate_result = None);
  (match !migrate_result with
  | Some (Ok "c2") -> ()
  | Some (Ok other) -> Alcotest.failf "unexpected %s" other
  | Some (Error e) -> Alcotest.failf "migrate: %s" e
  | None -> Alcotest.fail "migration never completed");
  Bus.run ~until:(Bus.now bus +. 40.0) bus;
  let avgs =
    List.filter_map Dr_workloads.Monitor.parse_displayed
      (Bus.outputs bus ~instance:"display")
  in
  Alcotest.(check bool) "application healthy after both" true
    (List.length avgs >= 3);
  Alcotest.(check (list string)) "final instances"
    [ "display"; "sensor2"; "c2" ]
    (Bus.instances bus)

let () =
  Alcotest.run "scenarios"
    [ ( "multiple points",
        [ Alcotest.test_case "both points capture" `Quick
            test_two_points_both_capture;
          Alcotest.test_case "restore from each" `Quick test_two_points_restore_each ] );
      ( "call chains",
        [ Alcotest.test_case "three-procedure chain" `Quick
            test_chain_capture_restores_distinct_procs ] );
      ( "signals",
        [ Alcotest.test_case "mid-restore signal safe" `Quick
            test_signal_during_restore_is_safe ] );
      ( "chaos",
        [ Alcotest.test_case "pipeline random migrations" `Quick
            test_pipeline_chaos;
          Alcotest.test_case "monitor rapid migrations" `Quick
            test_monitor_rapid_sequential_migrations;
          Alcotest.test_case "concurrent reconfigurations" `Quick
            test_concurrent_reconfigurations ] ) ]
