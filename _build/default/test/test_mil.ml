module Spec = Dr_mil.Spec
module P = Dr_mil.Mil_parser
module Pretty = Dr_mil.Mil_pretty
module V = Dr_mil.Validate

let monitor_mil = Dr_workloads.Monitor.mil

let test_parse_monitor () =
  let config = P.parse_config monitor_mil in
  Alcotest.(check (list string)) "modules"
    [ "sensor"; "display"; "compute"; "compute_v2" ]
    (List.map (fun m -> m.Spec.ms_name) config.modules);
  Alcotest.(check (list string)) "apps" [ "monitor" ]
    (List.map (fun a -> a.Spec.app_name) config.apps);
  let compute = Option.get (Spec.find_module config "compute") in
  Alcotest.(check (option string)) "source" (Some "./compute.exe") compute.source;
  Alcotest.(check (option string)) "machine" (Some "hostA") compute.machine;
  Alcotest.(check int) "two interfaces" 2 (List.length compute.ifaces);
  (match compute.points with
  | [ { rp_label = "R"; rp_state = Some [ "num"; "n"; "rp" ] } ] -> ()
  | _ -> Alcotest.fail "reconfiguration point");
  let monitor = Option.get (Spec.find_app config "monitor") in
  Alcotest.(check int) "three instances" 3 (List.length monitor.instances);
  Alcotest.(check int) "two binds" 2 (List.length monitor.binds)

let test_interface_details () =
  let config = P.parse_config monitor_mil in
  let display = Option.get (Spec.find_module config "display") in
  match display.ifaces with
  | [ { if_name = "temper"; role = Spec.Client; pattern = [ Spec.Mint ];
        accepts = [ Spec.Mfloat ]; returns = [] } ] ->
    ()
  | _ -> Alcotest.fail "client interface shape"

let test_instance_aliases_and_hosts () =
  let config =
    P.parse_config
      {|
module m { define interface out pattern {integer}; }
module n { use interface in pattern {integer}; }
application app {
  instance a = m on "h1";
  instance b = n;
  bind "a out" "b in";
}
|}
  in
  let app = Option.get (Spec.find_app config "app") in
  (match Spec.find_instance app "a" with
  | Some { inst_module = "m"; inst_host = Some "h1"; _ } -> ()
  | _ -> Alcotest.fail "aliased instance");
  match Spec.find_instance app "b" with
  | Some { inst_module = "n"; inst_host = None; _ } -> ()
  | _ -> Alcotest.fail "default instance"

let test_roundtrip_monitor () =
  let config = P.parse_config monitor_mil in
  let printed = Pretty.config_to_string config in
  let reparsed = P.parse_config printed in
  Alcotest.(check string) "printer is a fixpoint" printed
    (Pretty.config_to_string reparsed)

let expect_parse_error source fragment =
  match P.parse_config source with
  | exception P.Error (message, _) ->
    let contains needle haystack =
      let n = String.length needle and h = String.length haystack in
      let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
      n = 0 || go 0
    in
    if not (contains fragment message) then
      Alcotest.failf "error %S lacks %S" message fragment
  | _ -> Alcotest.fail "expected parse error"

let test_parse_errors () =
  expect_parse_error "modul x {}" "expected 'module' or 'application'";
  expect_parse_error "module m { bogus interface x; }" "expected";
  expect_parse_error
    {|application a { bind "one" "two three"; }|}
    "must be \"<instance> <interface>\"";
  expect_parse_error "module m { source = 3; }" "expected string literal"

let validate_errors source =
  match V.validate (P.parse_config source) with
  | Ok () -> Alcotest.fail "expected validation errors"
  | Error errors -> errors

let has_error fragment errors =
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  List.exists (contains fragment) errors

let test_validate_monitor_ok () =
  match V.validate (P.parse_config monitor_mil) with
  | Ok () -> ()
  | Error errors -> Alcotest.failf "unexpected: %s" (String.concat "; " errors)

let test_validate_rejections () =
  Alcotest.(check bool) "unknown module" true
    (has_error "unknown module"
       (validate_errors {|application a { instance x = nosuch; }|}));
  Alcotest.(check bool) "duplicate instance" true
    (has_error "duplicate instance"
       (validate_errors
          {|module m { define interface o pattern {integer}; }
            application a { instance x = m; instance x = m; }|}));
  Alcotest.(check bool) "unknown interface" true
    (has_error "no interface"
       (validate_errors
          {|module m { define interface o pattern {integer}; }
            module n { use interface i pattern {integer}; }
            application a { instance m; instance n; bind "m ghost" "n i"; }|}));
  Alcotest.(check bool) "pattern mismatch" true
    (has_error "pattern mismatch"
       (validate_errors
          {|module m { define interface o pattern {integer}; }
            module n { use interface i pattern {float}; }
            application a { instance m; instance n; bind "m o" "n i"; }|}));
  Alcotest.(check bool) "direction" true
    (has_error "cannot send"
       (validate_errors
          {|module m { use interface i pattern {integer}; }
            module n { use interface i pattern {integer}; }
            application a { instance m; instance n; bind "m i" "n i"; }|}));
  Alcotest.(check bool) "client/server reply mismatch" true
    (has_error "reply pattern mismatch"
       (validate_errors
          {|module m { client interface c pattern {integer} accepts {float}; }
            module n { server interface s pattern {integer} returns {integer}; }
            application a { instance m; instance n; bind "m c" "n s"; }|}));
  Alcotest.(check bool) "server-to-client direction" true
    (has_error "client-to-server"
       (validate_errors
          {|module m { client interface c pattern {integer} accepts {float}; }
            module n { server interface s pattern {integer} returns {float}; }
            application a { instance m; instance n; bind "n s" "m c"; }|}));
  Alcotest.(check bool) "duplicate module" true
    (has_error "duplicate module" (validate_errors "module m { } module m { }"));
  Alcotest.(check bool) "client with returns" true
    (has_error "cannot declare"
       (validate_errors
          {|module m { client interface c pattern {integer} returns {float}; }|}))

let test_cross_check_program () =
  let config = P.parse_config monitor_mil in
  let compute_spec = Option.get (Spec.find_module config "compute") in
  let program = Support.parse Dr_workloads.Monitor.compute_source in
  (match V.check_program_against_spec compute_spec program with
  | Ok () -> ()
  | Error errors -> Alcotest.failf "should pass: %s" (String.concat "; " errors));
  (* a program using an undeclared interface is rejected *)
  let bad =
    Support.parse
      {|
module compute;
proc main() {
  var x: int;
  R: mh_read("ghost_iface", x);
}
|}
  in
  (match V.check_program_against_spec compute_spec bad with
  | Error errors ->
    Alcotest.(check bool) "undeclared interface" true
      (has_error "undeclared interface" errors)
  | Ok () -> Alcotest.fail "expected rejection");
  (* writing on a use-interface is rejected *)
  let wrong_dir =
    Support.parse
      {|
module compute;
proc main() {
  R: mh_write("sensor", 1);
}
|}
  in
  (match V.check_program_against_spec compute_spec wrong_dir with
  | Error errors ->
    Alcotest.(check bool) "direction misuse" true (has_error "writes on" errors)
  | Ok () -> Alcotest.fail "expected rejection");
  (* a missing reconfiguration label is rejected *)
  let no_label =
    Support.parse "module compute;\nproc main() { mh_write(\"display\", 1.0); }"
  in
  match V.check_program_against_spec compute_spec no_label with
  | Error errors ->
    Alcotest.(check bool) "missing label" true (has_error "no matching label" errors)
  | Ok () -> Alcotest.fail "expected rejection"

let test_state_vars_cross_checked () =
  let config =
    P.parse_config
      {|
module m {
  use interface in pattern {integer};
  reconfiguration point R state {ghost};
}
|}
  in
  let spec = Option.get (Spec.find_module config "m") in
  let program =
    Support.parse
      {|
module m;
proc main() {
  var x: int;
  R: mh_read("in", x);
}
|}
  in
  match V.check_program_against_spec spec program with
  | Error errors ->
    Alcotest.(check bool) "unknown state var" true (has_error "ghost" errors)
  | Ok () -> Alcotest.fail "expected rejection"

let test_type_keywords_in_patterns () =
  let config =
    P.parse_config
      {|module m {
          define interface a pattern {int};
          define interface b pattern {integer};
          define interface c pattern {string, boolean};
        }|}
  in
  let m = Option.get (Spec.find_module config "m") in
  let pattern name = (Option.get (Spec.find_iface m name)).Spec.pattern in
  Alcotest.(check bool) "int == integer" true (pattern "a" = pattern "b");
  Alcotest.(check bool) "string,boolean" true
    (pattern "c" = [ Spec.Mstr; Spec.Mbool ])

let prop_printer_fixpoint =
  Support.qcheck ~count:200 "MIL printer is a fixpoint" Gen.mil_config
    (fun config ->
      let once = Pretty.config_to_string config in
      match P.parse_config once with
      | reparsed -> String.equal once (Pretty.config_to_string reparsed)
      | exception e ->
        QCheck2.Test.fail_reportf "failed to reparse:\n%s\n%s" once
          (Printexc.to_string e))

let () =
  Alcotest.run "mil"
    [ ( "parsing",
        [ Alcotest.test_case "monitor config" `Quick test_parse_monitor;
          Alcotest.test_case "interface details" `Quick test_interface_details;
          Alcotest.test_case "instances" `Quick test_instance_aliases_and_hosts;
          Alcotest.test_case "type keywords" `Quick test_type_keywords_in_patterns;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_monitor;
          Alcotest.test_case "errors" `Quick test_parse_errors ] );
      ( "validation",
        [ Alcotest.test_case "monitor ok" `Quick test_validate_monitor_ok;
          Alcotest.test_case "rejections" `Quick test_validate_rejections ] );
      ( "cross-check",
        [ Alcotest.test_case "program vs spec" `Quick test_cross_check_program;
          Alcotest.test_case "state vars" `Quick test_state_vars_cross_checked ] );
      ("properties", [ prop_printer_fixpoint ]) ]
