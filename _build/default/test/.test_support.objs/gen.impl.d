test/gen.ml: Array Dr_lang Dr_mil Dr_state Float Hashtbl List QCheck2 String
