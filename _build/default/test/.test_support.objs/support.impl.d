test/support.ml: Alcotest Dr_interp Dr_lang Dr_state Dr_transform Fmt Hashtbl List Printf QCheck2 QCheck_alcotest Queue String
