module Opt = Dr_opt.Optimize
module Machine = Dr_interp.Machine

let wrap body = Printf.sprintf "module t;\nproc main() {\n%s\n}" body

let run_program program =
  let sio = Support.script_io () in
  let m = Machine.create ~io:sio.Support.io program in
  Machine.run ~max_steps:10_000_000 m;
  (Support.printed sio, Machine.instr_count m, Machine.status m)

(* behaviour preserved, and never slower *)
let check_equivalent ?(expect_speedup = false) name source =
  let program = Support.parse source in
  Support.typecheck_ok program;
  let optimized, _stats = Opt.optimize program in
  Support.typecheck_ok optimized;
  let prints, instrs, status = run_program program in
  let prints', instrs', status' = run_program optimized in
  Alcotest.(check (list string)) (name ^ ": same output") prints prints';
  Alcotest.(check bool) (name ^ ": same final status") true (status = status');
  (* a hoisted loop that never runs pays one guard check: allow a
     constant of slack *)
  Alcotest.(check bool)
    (Printf.sprintf "%s: no slower beyond the guard (%d -> %d)" name instrs
       instrs')
    true (instrs' <= instrs + 2);
  if expect_speedup then
    Alcotest.(check bool)
      (Printf.sprintf "%s: strictly faster (%d -> %d)" name instrs instrs')
      true (instrs' < instrs)

let test_constant_folding () =
  let program = Support.parse (wrap "print(1 + 2 * 3, \" \", -(4 - 4));") in
  let folded, stats = Opt.fold program in
  Alcotest.(check bool) "folded something" true (stats.folded > 0);
  let prints, _, _ = run_program folded in
  Alcotest.(check (list string)) "value" [ "7 0" ] prints

let test_dead_branch_pruned () =
  let program =
    Support.parse (wrap "if (1 < 2) { print(\"a\"); } else { print(\"b\"); }")
  in
  let folded, stats = Opt.fold program in
  Alcotest.(check int) "one branch pruned" 1 stats.pruned;
  let prints, _, _ = run_program folded in
  Alcotest.(check (list string)) "kept the live branch" [ "a" ] prints

let test_labelled_branch_not_pruned () =
  (* a dead branch containing a label may be a goto target: keep it *)
  let source = wrap "if (false) { L: print(\"x\"); } goto L;" in
  let program = Support.parse source in
  Support.typecheck_ok program;
  let folded, stats = Opt.fold program in
  Alcotest.(check int) "nothing pruned" 0 stats.pruned;
  Support.typecheck_ok folded

let test_while_false_removed () =
  let program = Support.parse (wrap "while (false) { print(\"never\"); } print(\"end\");") in
  let folded, stats = Opt.fold program in
  Alcotest.(check int) "loop removed" 1 stats.pruned;
  let prints, _, _ = run_program folded in
  Alcotest.(check (list string)) "end only" [ "end" ] prints

let hoist_source =
  wrap
    "var i: int;\n\
     var s: int;\n\
     var acc: int;\n\
     var base: int = 5;\n\
     while (i < 50) {\n\
     s = base * 31 + 7;\n\
     acc = acc + s + i;\n\
     i = i + 1;\n\
     }\n\
     print(acc);"

let test_hoist_invariant () =
  let program = Support.parse hoist_source in
  let hoisted, stats = Opt.hoist program in
  Alcotest.(check int) "one assignment hoisted" 1 stats.hoisted;
  Support.typecheck_ok hoisted;
  check_equivalent ~expect_speedup:true "hoist" hoist_source

let test_hoist_blocked_by_label () =
  let source =
    wrap
      "var i: int;\n\
       var s: int;\n\
       var acc: int;\n\
       var base: int = 5;\n\
       while (i < 50) {\n\
       s = base * 31 + 7;\n\
       acc = acc + s + i;\n\
       R: i = i + 1;\n\
       }\n\
       print(acc);"
  in
  let program = Support.parse source in
  let hoisted, stats = Opt.hoist program in
  Alcotest.(check int) "nothing hoisted" 0 stats.hoisted;
  Alcotest.(check int) "inhibition counted" 1 stats.blocked_by_labels;
  Alcotest.(check bool) "program unchanged" true
    (Dr_lang.Ast.equal_program program hoisted)

let test_hoist_zero_iterations_exact () =
  (* the guarded prologue must not assign when the loop never runs *)
  check_equivalent "zero iterations"
    (wrap
       "var i: int = 10;\n\
        var s: int = 99;\n\
        var base: int = 5;\n\
        while (i < 5) {\n\
        s = base * 2;\n\
        i = i + 1;\n\
        }\n\
        print(s);")

let test_hoist_respects_variant_rhs () =
  (* s depends on i, which the loop assigns: not hoistable *)
  let source =
    wrap
      "var i: int;\nvar s: int;\nwhile (i < 5) {\ns = i * 2;\ni = i + 1;\n}\nprint(s);"
  in
  let _, stats = Opt.hoist (Support.parse source) in
  Alcotest.(check int) "not hoisted" 0 stats.hoisted;
  check_equivalent "variant rhs" source

let test_hoist_respects_multiple_assignments () =
  let source =
    wrap
      "var i: int;\nvar s: int;\nvar b: int = 3;\n\
       while (i < 5) {\ns = b * 2;\nif (i == 3) { s = 0; }\ni = i + 1;\n}\nprint(s);"
  in
  let _, stats = Opt.hoist (Support.parse source) in
  Alcotest.(check int) "not hoisted" 0 stats.hoisted;
  check_equivalent "multiple assignments" source

let test_hoist_respects_earlier_reads () =
  (* s is read before being assigned within the iteration: iteration 1
     must see the pre-loop value *)
  let source =
    wrap
      "var i: int;\nvar s: int = 100;\nvar b: int = 3;\nvar acc: int;\n\
       while (i < 5) {\nacc = acc + s;\ns = b * 2;\ni = i + 1;\n}\nprint(acc);"
  in
  let _, stats = Opt.hoist (Support.parse source) in
  Alcotest.(check int) "not hoisted" 0 stats.hoisted;
  check_equivalent "earlier reads" source

let test_hoist_respects_cond_reads () =
  let source =
    wrap
      "var s: int;\nvar b: int = 3;\n\
       while (s < 6) {\ns = b * 2;\nprint(s);\n}"
  in
  let _, stats = Opt.hoist (Support.parse source) in
  Alcotest.(check int) "not hoisted" 0 stats.hoisted;
  check_equivalent "cond reads target" source

let test_hoist_skips_effectful_rhs () =
  let source =
    "module t;\n\
     var calls: int = 0;\n\
     proc f(): int { calls = calls + 1; return 3; }\n\
     proc main() {\n\
     var i: int;\n\
     var s: int;\n\
     while (i < 5) {\n\
     s = f();\n\
     i = i + 1;\n\
     }\n\
     print(calls);\n\
     }"
  in
  let _, stats = Opt.hoist (Support.parse source) in
  Alcotest.(check int) "calls not hoisted" 0 stats.hoisted;
  check_equivalent "effectful rhs" source

let test_nested_loop_hoist () =
  let program = Dr_workloads.Synthetic.hoistable ~rounds:10 ~inner:10 () in
  let optimized, stats = Opt.optimize program in
  Alcotest.(check bool) "hoisted from the inner loop" true (stats.hoisted >= 1);
  let prints, instrs, _ = run_program program in
  let prints', instrs', _ = run_program optimized in
  Alcotest.(check (list string)) "same acc" prints prints';
  Alcotest.(check bool)
    (Printf.sprintf "faster (%d -> %d)" instrs instrs')
    true (instrs' < instrs)

let test_point_inhibits_optimization () =
  (* the paper's §4 claim, end to end: the same program with a
     reconfiguration point inside the hot loop cannot be optimised
     there *)
  let free = Dr_workloads.Synthetic.hoistable ~rounds:10 ~inner:10 () in
  let pinned =
    Dr_workloads.Synthetic.hoistable ~point:`Inner ~rounds:10 ~inner:10 ()
  in
  let _, free_stats = Opt.optimize free in
  let _, pinned_stats = Opt.optimize pinned in
  Alcotest.(check bool) "free program hoists" true (free_stats.hoisted > 0);
  Alcotest.(check int) "pinned program hoists nothing" 0 pinned_stats.hoisted;
  Alcotest.(check bool) "inhibition reported" true
    (pinned_stats.blocked_by_labels > 0)

let test_transform_after_optimize () =
  (* the pipeline composes: optimise first, then prepare the optimised
     program for reconfiguration (points outside hot loops survive) *)
  let program =
    Dr_workloads.Synthetic.hoistable ~point:`Inner ~rounds:6 ~inner:6 ()
  in
  let optimized, _ = Opt.optimize program in
  match
    Dr_transform.Instrument.prepare optimized
      ~points:Dr_workloads.Synthetic.hoistable_points
  with
  | Ok prepared ->
    Support.typecheck_ok prepared.Dr_transform.Instrument.prepared_program
  | Error e -> Alcotest.failf "prepare after optimize: %s" e

let prop_fold_preserves_semantics =
  (* folding random (possibly ill-typed) programs must at least keep
     them printable and re-parseable; on well-typed terminating programs
     output equality is covered by the directed tests *)
  Support.qcheck ~count:200 "fold output still parses" Gen.program (fun p ->
      let folded, _ = Dr_opt.Optimize.fold p in
      let printed = Dr_lang.Pretty.program_to_string folded in
      match Dr_lang.Parser.parse_program printed with
      | _ -> true
      | exception e ->
        QCheck2.Test.fail_reportf "unparseable after fold: %s"
          (Printexc.to_string e))

let () =
  Alcotest.run "optimize"
    [ ( "folding",
        [ Alcotest.test_case "constants" `Quick test_constant_folding;
          Alcotest.test_case "dead branch" `Quick test_dead_branch_pruned;
          Alcotest.test_case "labelled branch kept" `Quick
            test_labelled_branch_not_pruned;
          Alcotest.test_case "while(false)" `Quick test_while_false_removed ] );
      ( "hoisting",
        [ Alcotest.test_case "invariant" `Quick test_hoist_invariant;
          Alcotest.test_case "blocked by label" `Quick test_hoist_blocked_by_label;
          Alcotest.test_case "zero iterations" `Quick
            test_hoist_zero_iterations_exact;
          Alcotest.test_case "variant rhs" `Quick test_hoist_respects_variant_rhs;
          Alcotest.test_case "multiple assignments" `Quick
            test_hoist_respects_multiple_assignments;
          Alcotest.test_case "earlier reads" `Quick test_hoist_respects_earlier_reads;
          Alcotest.test_case "cond reads" `Quick test_hoist_respects_cond_reads;
          Alcotest.test_case "effectful rhs" `Quick test_hoist_skips_effectful_rhs;
          Alcotest.test_case "nested loops" `Quick test_nested_loop_hoist ] );
      ( "reconfiguration interplay",
        [ Alcotest.test_case "point inhibits motion" `Quick
            test_point_inhibits_optimization;
          Alcotest.test_case "transform after optimize" `Quick
            test_transform_after_optimize ] );
      ("properties", [ prop_fold_preserves_semantics ]) ]
