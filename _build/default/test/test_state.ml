module Value = Dr_state.Value
module Arch = Dr_state.Arch

let test_value_equal () =
  Alcotest.(check bool) "ints" true (Value.equal (Vint 3) (Vint 3));
  Alcotest.(check bool) "ints differ" false (Value.equal (Vint 3) (Vint 4));
  Alcotest.(check bool) "cross kind" false (Value.equal (Vint 0) (Vfloat 0.0));
  Alcotest.(check bool) "nan equals nan" true
    (Value.equal (Vfloat Float.nan) (Vfloat Float.nan));
  Alcotest.(check bool) "ptr" true (Value.equal (Vptr (1, 2)) (Vptr (1, 2)));
  Alcotest.(check bool) "ptr offset" false (Value.equal (Vptr (1, 2)) (Vptr (1, 3)));
  Alcotest.(check bool) "null" true (Value.equal Vnull Vnull)

let test_value_pp () =
  let shows v expected = Alcotest.(check string) expected expected (Value.to_string v) in
  shows (Value.Vint 42) "42";
  shows (Value.Vbool true) "true";
  shows (Value.Vstr "hi") "\"hi\"";
  shows (Value.Varr 3) "<arr #3>";
  shows (Value.Vptr (3, 1)) "<ptr #3+1>";
  shows Value.Vnull "null"

let test_value_defaults_and_types () =
  let module A = Dr_lang.Ast in
  List.iter
    (fun (ty, expected) ->
      Alcotest.(check bool) "default inhabits type" true
        (Value.matches_ty (Value.default_of_ty ty) ty);
      Alcotest.(check bool) "expected default" true
        (Value.equal (Value.default_of_ty ty) expected))
    [ (A.Tint, Value.Vint 0); (A.Tfloat, Vfloat 0.0); (A.Tbool, Vbool false);
      (A.Tstr, Vstr ""); (A.Tarr A.Tint, Vnull); (A.Tptr A.Tfloat, Vnull) ];
  Alcotest.(check bool) "null inhabits arrays" true
    (Value.matches_ty Value.Vnull (A.Tarr A.Tint));
  Alcotest.(check bool) "int does not inhabit float" false
    (Value.matches_ty (Value.Vint 1) A.Tfloat);
  Alcotest.(check bool) "arr inhabits arr" true
    (Value.matches_ty (Value.Varr 0) (A.Tarr A.Tstr))

let test_arch_lookup () =
  Alcotest.(check bool) "x86_64 found" true (Arch.by_name "x86_64" <> None);
  Alcotest.(check bool) "unknown" true (Arch.by_name "pdp11" = None);
  Alcotest.(check int) "four architectures" 4 (List.length Arch.all);
  Alcotest.(check bool) "names unique" true
    (let names = List.map (fun a -> a.Arch.arch_name) Arch.all in
     List.length (List.sort_uniq String.compare names) = List.length names)

let test_arch_int_fits () =
  Alcotest.(check bool) "small fits 32" true (Arch.int_fits Arch.sparc32 1000);
  Alcotest.(check bool) "max int32 fits" true
    (Arch.int_fits Arch.arm32 (Int32.to_int Int32.max_int));
  Alcotest.(check bool) "min int32 fits" true
    (Arch.int_fits Arch.arm32 (Int32.to_int Int32.min_int));
  Alcotest.(check bool) "overflow rejected" false
    (Arch.int_fits Arch.sparc32 (Int32.to_int Int32.max_int + 1));
  Alcotest.(check bool) "underflow rejected" false
    (Arch.int_fits Arch.sparc32 (Int32.to_int Int32.min_int - 1));
  Alcotest.(check bool) "64-bit takes anything" true
    (Arch.int_fits Arch.m68k max_int)

let test_arch_pp () =
  Alcotest.(check string) "rendering" "sparc32 (big-endian, 32-bit)"
    (Fmt.str "%a" Arch.pp Arch.sparc32)

let () =
  Alcotest.run "state"
    [ ( "values",
        [ Alcotest.test_case "equality" `Quick test_value_equal;
          Alcotest.test_case "printing" `Quick test_value_pp;
          Alcotest.test_case "defaults and types" `Quick
            test_value_defaults_and_types ] );
      ( "architectures",
        [ Alcotest.test_case "lookup" `Quick test_arch_lookup;
          Alcotest.test_case "word fits" `Quick test_arch_int_fits;
          Alcotest.test_case "printing" `Quick test_arch_pp ] ) ]
