module Cg = Dr_analysis.Callgraph

(* Fig. 6-like program: main calls a (twice) and c; a calls b; b calls c;
   plus an expression-position call. *)
let sample =
  Support.parse
    {|
module sample;

proc c(): int { return 1; }

proc b() {
  var x: int;
  x = c();
}

proc a() {
  b();
  b();
}

proc main() {
  a();
  c();
  a();
}
|}

let graph = Cg.build sample

let test_procs () =
  Alcotest.(check (list string)) "program order" [ "c"; "b"; "a"; "main" ]
    (Cg.procs graph)

let test_callees () =
  Alcotest.(check (list string)) "main callees" [ "a"; "c" ] (Cg.callees graph "main");
  Alcotest.(check (list string)) "a callees" [ "b" ] (Cg.callees graph "a");
  Alcotest.(check (list string)) "b callees" [ "c" ] (Cg.callees graph "b");
  Alcotest.(check (list string)) "c callees" [] (Cg.callees graph "c")

let test_sites_and_ordinals () =
  let from_main = Cg.sites_from graph "main" in
  Alcotest.(check (list string)) "main site targets" [ "a"; "c"; "a" ]
    (List.map (fun (s : Cg.site) -> s.callee) from_main);
  Alcotest.(check (list int)) "stmt ordinals" [ 0; 1; 2 ]
    (List.map (fun (s : Cg.site) -> s.ordinal) from_main);
  let b_sites = Cg.sites_from graph "b" in
  Alcotest.(check int) "b has one expr site" 1 (List.length b_sites);
  match b_sites with
  | [ { position = Cg.Expr_call; callee = "c"; ordinal = 0; _ } ] -> ()
  | _ -> Alcotest.fail "expression call site shape"

let test_reachability () =
  Alcotest.(check (list string)) "from main" [ "c"; "b"; "a"; "main" ]
    (Cg.reachable_from graph "main");
  Alcotest.(check (list string)) "from a" [ "c"; "b"; "a" ]
    (Cg.reachable_from graph "a");
  Alcotest.(check (list string)) "can reach b" [ "b"; "a"; "main" ]
    (Cg.can_reach graph ~targets:[ "b" ]);
  Alcotest.(check (list string)) "can reach c" [ "c"; "b"; "a"; "main" ]
    (Cg.can_reach graph ~targets:[ "c" ])

let test_recursion () =
  let prog =
    Support.parse
      "module t;\nproc f(n: int) { if (n > 0) { f(n - 1); } }\nproc main() { f(3); }"
  in
  let g = Cg.build prog in
  Alcotest.(check (list string)) "self edge" [ "f" ] (Cg.callees g "f");
  Alcotest.(check (list string)) "reach includes self" [ "f"; "main" ]
    (Cg.can_reach g ~targets:[ "f" ])

let test_unreachable_proc () =
  let prog =
    Support.parse "module t;\nproc orphan() { }\nproc main() { }"
  in
  let g = Cg.build prog in
  Alcotest.(check (list string)) "main only" [ "main" ] (Cg.reachable_from g "main")

let test_dot_output () =
  let dot = Cg.to_dot graph in
  Alcotest.(check bool) "has digraph" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  let count_edges =
    List.length (String.split_on_char '\n' dot)
  in
  Alcotest.(check bool) "non-trivial" true (count_edges > 6)

let test_calls_in_nested_blocks () =
  let prog =
    Support.parse
      {|
module t;
proc f() { }
proc main() {
  while (true) {
    if (false) { f(); } else { f(); }
  }
}
|}
  in
  let g = Cg.build prog in
  Alcotest.(check int) "both branch sites found" 2
    (List.length (Cg.sites_from g "main"))

let () =
  Alcotest.run "callgraph"
    [ ( "structure",
        [ Alcotest.test_case "procs" `Quick test_procs;
          Alcotest.test_case "callees" `Quick test_callees;
          Alcotest.test_case "sites and ordinals" `Quick test_sites_and_ordinals;
          Alcotest.test_case "nested blocks" `Quick test_calls_in_nested_blocks ] );
      ( "reachability",
        [ Alcotest.test_case "forward/backward" `Quick test_reachability;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "unreachable" `Quick test_unreachable_proc ] );
      ("output", [ Alcotest.test_case "dot" `Quick test_dot_output ]) ]
