(* The Monitor example of the paper (§2, Figs. 1–5), end to end.

   Three modules — sensor, display, compute — run as a distributed
   application. The compute module averages sensor readings with a
   recursive procedure whose reconfiguration point R sits between the
   recursive call and the sensor read, so a reconfiguration arriving
   mid-computation must capture one activation record per pending
   recursive call (the hard case the paper is about).

   We run the application, then move compute from hostA (x86_64) to
   hostB (sparc32, big-endian 32-bit) while it executes, and show that
   the display keeps receiving correct averages.

   Run with: dune exec examples/monitor.exe
   Pass --show-source to print Fig. 3 (original) and Fig. 4
   (instrumented) for the compute module. *)

module Bus = Dr_bus.Bus
module Monitor = Dr_workloads.Monitor

let show_source () =
  print_endline "=== Fig. 3: original compute module ===";
  print_string Monitor.compute_source;
  let system = Monitor.load () in
  print_endline "\n=== Fig. 4: compute prepared for reconfiguration ===";
  print_string
    (Option.get (Dynrecon.System.instrumented_source system "compute"))

let run () =
  print_endline "=== Fig. 2: configuration specification ===";
  print_string Monitor.mil;
  let system = Monitor.load () in
  let bus = Monitor.start system in
  print_endline "\n=== Fig. 1 (left): starting configuration ===";
  List.iter
    (fun inst ->
      Printf.printf "  %-10s on %s\n" inst
        (Option.value ~default:"?" (Bus.instance_host bus ~instance:inst)))
    (Bus.instances bus);
  Bus.run ~until:40.0 bus;
  print_endline "\ndisplay output before the move:";
  List.iter (Printf.printf "  %s\n") (Bus.outputs bus ~instance:"display");
  print_endline "\n=== Fig. 5: running the replacement script (move to hostB) ===";
  (match
     Dynrecon.System.migrate bus ~instance:"compute" ~new_instance:"compute'"
       ~new_host:"hostB"
   with
  | Ok instance -> Printf.printf "reconfiguration complete: %s now runs on %s\n"
      instance
      (Option.value ~default:"?" (Bus.instance_host bus ~instance))
  | Error e -> failwith e);
  Bus.run ~until:(Bus.now bus +. 50.0) bus;
  print_endline "\n=== Fig. 1 (right): ending configuration ===";
  List.iter
    (fun inst ->
      Printf.printf "  %-10s on %s\n" inst
        (Option.value ~default:"?" (Bus.instance_host bus ~instance:inst)))
    (Bus.instances bus);
  print_endline "\ndisplay output after the move:";
  List.iter (Printf.printf "  %s\n") (Bus.outputs bus ~instance:"display");
  let avgs =
    List.filter_map Monitor.parse_displayed (Bus.outputs bus ~instance:"display")
  in
  Printf.printf
    "\nall %d averages are means of consecutive sensor readings: %b\n"
    (List.length avgs)
    (Monitor.averages_plausible ~n:4 (List.map snd avgs));
  print_endline "\ntimeline of the run:";
  print_string (Dr_report.Timeline.render bus)

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--show-source" then
    show_source ()
  else run ()
