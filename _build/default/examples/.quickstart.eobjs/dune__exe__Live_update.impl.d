examples/live_update.ml: Dr_bus Dr_interp Dr_state Dr_workloads Dynrecon List Printf
