examples/worker_farm.ml: Dr_bus Dr_report Dr_workloads Dynrecon List Option Printf
