examples/worker_farm.mli:
