examples/monitor.mli:
