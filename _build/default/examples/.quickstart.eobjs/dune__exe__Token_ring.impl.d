examples/token_ring.ml: Dr_bus Dr_reconfig Dr_workloads Dynrecon List Option Printf
