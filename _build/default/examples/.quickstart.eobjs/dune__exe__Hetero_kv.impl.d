examples/hetero_kv.ml: Dr_bus Dr_reconfig Dr_sim Dr_state Dr_workloads Dynrecon List Option Printf
