examples/pipeline_surgery.mli:
