examples/quickstart.mli:
