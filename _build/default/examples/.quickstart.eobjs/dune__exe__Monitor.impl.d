examples/monitor.ml: Array Dr_bus Dr_report Dr_workloads Dynrecon List Option Printf Sys
