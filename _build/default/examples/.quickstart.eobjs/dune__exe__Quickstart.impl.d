examples/quickstart.ml: Dr_bus Dr_state Dynrecon List Option Printf
