examples/pipeline_surgery.ml: Dr_bus Dr_interp Dr_state Dr_workloads Dynrecon List Option Printf
