examples/hetero_kv.mli:
