(* Surgery on a live stream-processing pipeline.

   source → scale (×2) → offset (+100) → sink

   While items flow, we (1) replace the scale stage in place, (2) migrate
   the offset stage to another machine, and (3) replicate the offset
   stage. Throughout, the sink must observe the exact expected stream —
   no item lost, duplicated or reordered by (1) and (2) — and the
   stages' processed-item counters must survive each operation.

   Run with: dune exec examples/pipeline_surgery.exe *)

module Bus = Dr_bus.Bus
module Pipeline = Dr_workloads.Pipeline

let sink_count bus = List.length (Pipeline.sink_values bus)

let wait_for bus k =
  Bus.run_while bus ~max_events:3_000_000 (fun () -> sink_count bus < k)

let processed bus instance =
  match Bus.machine bus ~instance with
  | Some m -> (
    match Dr_interp.Machine.read_global m "processed" with
    | Some (Dr_state.Value.Vint n) -> n
    | _ -> -1)
  | None -> -1

let () =
  let system = Pipeline.load () in
  let bus = Pipeline.start system in
  wait_for bus 4;
  Printf.printf "warmed up: sink has %d items; scale processed %d\n"
    (sink_count bus) (processed bus "scale");

  print_endline "\n(1) replacing the scale stage in place...";
  (match Dynrecon.System.replace bus ~instance:"scale" ~new_instance:"scale'" () with
  | Ok _ -> ()
  | Error e -> failwith e);
  wait_for bus 8;
  Printf.printf "    scale' processed counter continued at %d\n"
    (processed bus "scale'");

  print_endline "\n(2) migrating the offset stage to hostC...";
  (match
     Dynrecon.System.migrate bus ~instance:"offset" ~new_instance:"offset'"
       ~new_host:"hostC"
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  wait_for bus 12;
  Printf.printf "    offset' now on %s, counter at %d\n"
    (Option.value ~default:"?" (Bus.instance_host bus ~instance:"offset'"))
    (processed bus "offset'");

  let values = Pipeline.sink_values bus in
  let expected = Pipeline.expected_prefix (List.length values) in
  Printf.printf "\nstream integrity after (1)+(2): %b\n" (values = expected);

  print_endline "\n(3) replicating the offset stage...";
  (match
     Dynrecon.System.replicate bus ~instance:"offset'" ~replica_instance:"offset_r" ()
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  wait_for bus 18;
  Printf.printf "    replicas alive: offset'=%b offset_r=%b\n"
    (List.mem "offset'" (Bus.instances bus))
    (List.mem "offset_r" (Bus.instances bus));
  Printf.printf
    "    (fan-out note: after replication the sink sees each item from both copies)\n";
  Printf.printf "\nsink saw %d items in total\n" (sink_count bus)
