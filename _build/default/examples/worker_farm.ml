(* An elastic worker farm under live reconfiguration.

   feeder → dispatcher → {w1, w2, w3} → collector

   The dispatcher round-robins jobs over its active worker slots; the
   active count is part of its process state. While 40 jobs flow
   through, we:

     1. scale out to three workers when the dispatcher's backlog grows,
     2. migrate the dispatcher itself — the stateful coordinator — to
        another machine mid-stream (its slot counter, round-robin cursor
        and any job being dispatched travel in its captured state),
     3. scale back in once the backlog drains.

   Invariant: the collector receives every job's result exactly once.

   Run with: dune exec examples/worker_farm.exe *)

module Bus = Dr_bus.Bus
module Farm = Dr_workloads.Farm

let () =
  let system = Farm.load () in
  let bus = Farm.start system in
  (* one slow worker: let the backlog build *)
  Bus.run ~until:12.0 bus;
  Printf.printf "t=%.0f  jobs queued at the single worker: %d\n" (Bus.now bus)
    (Bus.pending_messages bus ("w1", "in"));

  print_endline "\nscaling out to three workers...";
  (match Farm.scale_out bus ~slot:2 ~host:"hostB" with
  | Ok w -> Printf.printf "  added %s\n" w
  | Error e -> failwith e);
  (match Farm.scale_out bus ~slot:3 ~host:"hostC" with
  | Ok w -> Printf.printf "  added %s\n" w
  | Error e -> failwith e);
  Bus.run ~until:(Bus.now bus +. 10.0) bus;

  print_endline "\nmigrating the dispatcher to hostC under load...";
  (match
     Dynrecon.System.migrate bus ~instance:"dispatcher"
       ~new_instance:"dispatcher'" ~new_host:"hostC"
   with
  | Ok _ ->
    Printf.printf "  dispatcher now on %s\n"
      (Option.value ~default:"?" (Bus.instance_host bus ~instance:"dispatcher'"))
  | Error e -> failwith e);
  Bus.run ~until:(Bus.now bus +. 20.0) bus;

  Printf.printf "\nt=%.0f  worker queues: w1=%d w2=%d w3=%d — scaling back in\n"
    (Bus.now bus)
    (Bus.pending_messages bus ("w1", "in"))
    (Bus.pending_messages bus ("w2", "in"))
    (Bus.pending_messages bus ("w3", "in"));
  Farm.scale_in bus;

  (* drain everything *)
  Bus.run_while bus ~max_events:3_000_000 (fun () ->
      List.length (Farm.results bus) < Farm.job_count);
  let results = List.sort compare (Farm.results bus) in
  Printf.printf
    "\ncollector received %d results; every job exactly once: %b\n"
    (List.length results)
    (results = Farm.expected_results);
  print_endline "\ntimeline:";
  print_string (Dr_report.Timeline.render ~events:[ "script"; "signal"; "state" ] bus)
