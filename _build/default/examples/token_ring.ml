(* An evolving token ring (after the evolving philosophers problem of
   Kramer & Magee, discussed in the paper's §4).

   Three members pass an incrementing token around a ring. While it
   circulates we:

     1. splice a new member into the ring,
     2. migrate a member to another machine — if it holds the token at
        that moment, the token's value is part of its captured process
        state and moves with it,
     3. remove a member by routing around it.

   The invariant checked at the end: the token's value equals the total
   number of passes performed by every member, past and present — the
   token was never lost or duplicated by any reconfiguration.

   Run with: dune exec examples/token_ring.exe *)

module Bus = Dr_bus.Bus
module Ring = Dr_workloads.Ring

let show bus members =
  List.iter
    (fun m ->
      let p = Ring.passes bus ~instance:m in
      if p >= 0 then
        Printf.printf "  %-4s on %-6s passes=%d\n" m
          (Option.value ~default:"?" (Bus.instance_host bus ~instance:m))
          p)
    members

let () =
  let system = Ring.load () in
  let bus = Ring.start system in
  Bus.run ~until:30.0 bus;
  print_endline "ring a -> b -> c -> a after 30 ticks:";
  show bus [ "a"; "b"; "c" ];

  print_endline "\n1. splicing member d between a and b (live)...";
  (match Ring.insert_member bus ~instance:"d" ~host:"hostC" ~after:"a" ~before:"b" with
  | Ok () -> ()
  | Error e -> failwith e);
  Bus.run ~until:(Bus.now bus +. 30.0) bus;
  show bus [ "a"; "d"; "b"; "c" ];

  print_endline "\n2. migrating member b to hostC mid-circulation...";
  (match Dynrecon.System.migrate bus ~instance:"b" ~new_instance:"b2" ~new_host:"hostC" with
  | Ok _ -> ()
  | Error e -> failwith e);
  Bus.run ~until:(Bus.now bus +. 30.0) bus;
  show bus [ "a"; "d"; "b2"; "c" ];

  print_endline "\n3. removing member c (bypass, drain, delete)...";
  Ring.bypass_member bus ~instance:"c" ~pred:"b2" ~succ:"a";
  Bus.run ~until:(Bus.now bus +. 20.0) bus;
  Dr_reconfig.Script.remove_module bus ~instance:"c";
  Bus.run ~until:(Bus.now bus +. 20.0) bus;
  show bus [ "a"; "d"; "b2" ];

  (* A tap observer received a copy of the token at every hop. If any
     reconfiguration had lost, duplicated or reordered the token, the
     history would not be 1, 2, 3, … *)
  let history = Ring.tap_history bus in
  Printf.printf
    "\ntap observed %d hops; history is exactly 1..%d with no gap or\n\
     duplicate: %b\n"
    (List.length history) (List.length history)
    (Ring.history_consecutive history);
  Printf.printf
    "(b's pass counter moved into b2 with its captured state; the token\n\
    \ survived an insertion, a cross-architecture migration and a removal)\n"
