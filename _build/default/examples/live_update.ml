(* Live software maintenance: replace a running module with a new
   version without losing its state.

   compute_v2 is a maintenance release of the monitor's compute module:
   same interfaces and same state shape, but it additionally reports how
   many requests it has served. The update happens while the application
   runs; the served-request counter — part of the captured process
   state — carries over, so v2's first report counts v1's work too.

   This is the contrast with the no-participation baseline (paper §4):
   without state capture, the replacement would restart from zero.

   Run with: dune exec examples/live_update.exe *)

module Bus = Dr_bus.Bus
module Monitor = Dr_workloads.Monitor

let () =
  let system = Monitor.load () in
  let bus = Monitor.start system in
  print_endline "running v1 (counts requests silently)...";
  Bus.run ~until:60.0 bus;
  let served_before =
    match Bus.machine bus ~instance:"compute" with
    | Some m -> (
      match Dr_interp.Machine.read_global m "served" with
      | Some (Dr_state.Value.Vint n) -> n
      | _ -> 0)
    | None -> 0
  in
  Printf.printf "v1 has served %d request(s); updating to v2 in place...\n"
    served_before;
  (match
     Dynrecon.System.replace bus ~instance:"compute" ~new_instance:"compute_v2"
       ~new_module:"compute_v2" ()
   with
  | Ok _ -> print_endline "update complete (application never stopped)"
  | Error e -> failwith e);
  Bus.run ~until:(Bus.now bus +. 60.0) bus;
  print_endline "\nv2's reports (note the counter continued, not reset):";
  List.iter (Printf.printf "  %s\n") (Bus.outputs bus ~instance:"compute_v2");
  print_endline "\ndisplay kept receiving correct averages throughout:";
  List.iter (Printf.printf "  %s\n") (Bus.outputs bus ~instance:"display");
  let avgs =
    List.filter_map Monitor.parse_displayed (Bus.outputs bus ~instance:"display")
  in
  Printf.printf "\ncorrect: %b\n"
    (Monitor.averages_plausible ~n:4 (List.map snd avgs))
