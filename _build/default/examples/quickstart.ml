(* Quickstart: the smallest complete use of the platform.

   A counter module ticks forever; we declare one reconfiguration point,
   deploy it, let it run, then migrate it to another machine. Its counter
   value — part of the captured process state — survives the move.

   Run with: dune exec examples/quickstart.exe *)

module Bus = Dr_bus.Bus
module System = Dynrecon.System

(* 1. The module source: plain MiniProc plus one label, R. *)
let counter_source =
  {|
module counter;

var count: int = 0;

proc main() {
  mh_init();
  while (true) {
    count = count + 1;
    print("tick ", count);
    R: sleep(5);
  }
}
|}

(* 2. The configuration: one module, its reconfiguration point, one
   application instance. *)
let mil =
  {|
module counter {
  source = "./counter.exe";
  reconfiguration point R state {count};
}

application demo {
  instance counter on "alpha";
}
|}

let hosts =
  [ { Bus.host_name = "alpha"; arch = Dr_state.Arch.x86_64 };
    { Bus.host_name = "beta"; arch = Dr_state.Arch.sparc32 } ]

let () =
  (* 3. Load: parses, typechecks, cross-checks, and automatically
     instruments the module for reconfiguration. *)
  let system =
    match System.load ~mil ~sources:[ ("counter", counter_source) ] () with
    | Ok s -> s
    | Error e -> failwith e
  in
  print_endline "=== instrumented source the platform generated ===";
  print_string (Option.get (System.instrumented_source system "counter"));
  (* 4. Deploy and run for a while. *)
  let bus =
    match System.start system ~app:"demo" ~hosts () with
    | Ok bus -> bus
    | Error e -> failwith e
  in
  Bus.run ~until:30.0 bus;
  Printf.printf "\n=== before migration (t=%.0f) ===\n" (Bus.now bus);
  List.iter print_endline (Bus.outputs bus ~instance:"counter");
  (* 5. Migrate the running module from alpha (x86_64, little-endian) to
     beta (sparc32, big-endian). The state image travels through the
     abstract format. *)
  (match System.migrate bus ~instance:"counter" ~new_instance:"counter2" ~new_host:"beta" with
  | Ok _ -> ()
  | Error e -> failwith e);
  Bus.run ~until:(Bus.now bus +. 30.0) bus;
  Printf.printf "\n=== after migration to %s (t=%.0f) ===\n"
    (Option.value ~default:"?" (Bus.instance_host bus ~instance:"counter2"))
    (Bus.now bus);
  print_endline "(final ticks of the old incarnation on alpha)";
  List.iter print_endline (Bus.outputs bus ~instance:"counter");
  print_endline "(ticks of the clone on beta)";
  List.iter print_endline (Bus.outputs bus ~instance:"counter2");
  print_endline "\nNote: the tick counter continued — process state survived the move."
