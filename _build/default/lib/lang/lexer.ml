exception Error of string * int

type state = { src : string; mutable pos : int; mutable line : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with Some '\n' -> st.line <- st.line + 1 | _ -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws st
  | Some '/' when peek2 st = Some '/' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_ws st
  | Some '/' when peek2 st = Some '*' ->
    let start_line = st.line in
    advance st;
    advance st;
    let rec to_close () =
      match peek st, peek2 st with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> raise (Error ("unterminated comment", start_line))
      | Some _, _ ->
        advance st;
        to_close ()
    in
    to_close ();
    skip_ws st
  | Some _ | None -> ()

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match peek st, peek2 st with
    | Some '.', Some c when is_digit c -> true
    | _ -> false
  in
  if is_float then begin
    advance st;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    (* optional exponent *)
    (match peek st with
    | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
    | _ -> ());
    let text = String.sub st.src start (st.pos - start) in
    Token.Tfloat_lit (float_of_string text)
  end
  else begin
    let text = String.sub st.src start (st.pos - start) in
    Token.Tint_lit (int_of_string text)
  end

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_alnum c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match List.assoc_opt text Token.keyword_table with
  | Some kw -> kw
  | None -> Token.Tident text

let lex_string st =
  let line = st.line in
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> raise (Error ("unterminated string literal", line))
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '"' -> Buffer.add_char buf '"'
      | Some c -> raise (Error (Printf.sprintf "bad escape '\\%c'" c, st.line))
      | None -> raise (Error ("unterminated string literal", line)));
      advance st;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Token.Tstr_lit (Buffer.contents buf)

let next_token st =
  skip_ws st;
  let line = st.line in
  let tok =
    match peek st with
    | None -> Token.Teof
    | Some c when is_digit c -> lex_number st
    | Some c when is_alpha c -> lex_ident st
    | Some '"' -> lex_string st
    | Some c ->
      let two target result =
        if peek2 st = Some target then begin
          advance st;
          advance st;
          Some result
        end
        else None
      in
      let simple result =
        advance st;
        result
      in
      (match c with
      | '{' -> simple Token.Tlbrace
      | '}' -> simple Token.Trbrace
      | '(' -> simple Token.Tlparen
      | ')' -> simple Token.Trparen
      | '[' -> simple Token.Tlbracket
      | ']' -> simple Token.Trbracket
      | ',' -> simple Token.Tcomma
      | ';' -> simple Token.Tsemi
      | ':' -> simple Token.Tcolon
      | '+' -> simple Token.Tplus
      | '-' -> simple Token.Tminus
      | '*' -> simple Token.Tstar
      | '/' -> simple Token.Tslash
      | '%' -> simple Token.Tpercent
      | '^' -> simple Token.Tcaret
      | '=' -> ( match two '=' Token.Teq with Some t -> t | None -> simple Token.Tassign)
      | '!' -> ( match two '=' Token.Tne with Some t -> t | None -> simple Token.Tbang)
      | '<' -> ( match two '=' Token.Tle with Some t -> t | None -> simple Token.Tlt)
      | '>' -> ( match two '=' Token.Tge with Some t -> t | None -> simple Token.Tgt)
      | '&' -> ( match two '&' Token.Tandand with Some t -> t | None -> simple Token.Tamp)
      | '|' -> (
        match two '|' Token.Toror with
        | Some t -> t
        | None -> raise (Error ("single '|' is not an operator", line)))
      | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, line)))
  in
  (tok, line)

let tokenize src =
  let st = { src; pos = 0; line = 1 } in
  let rec loop acc =
    let ((tok, _) as entry) = next_token st in
    match tok with
    | Token.Teof -> List.rev (entry :: acc)
    | _ -> loop (entry :: acc)
  in
  loop []
