(** Recursive-descent parser for MiniProc.

    Grammar sketch:
    {v
    program := "module" IDENT ";" (global | proc)*
    global  := "var" IDENT ":" type ("=" expr)? ";"
    proc    := "proc" IDENT "(" params ")" (":" type)? block
    param   := "ref"? IDENT ":" type
    type    := ("int"|"float"|"bool"|"string") ("[]"|"*")*
    stmt    := (IDENT ":")? unlabeled
    v}

    Statement-position calls whose callee is a builtin
    (see {!Builtin_sig}) become [BuiltinS]; expression-position calls to
    expression builtins become [Builtin]. *)

exception Error of string * int
(** [Error (message, line)]. *)

val parse_program : string -> Ast.program
(** @raise Error on syntax errors,
    @raise Lexer.Error on lexical errors. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by tests). *)
