(* Lexical tokens for MiniProc. *)

type t =
  | Tident of string
  | Tint_lit of int
  | Tfloat_lit of float
  | Tstr_lit of string
  (* keywords *)
  | Tmodule | Tvar | Tproc | Tref
  | Tif | Telse | Twhile | Treturn | Tgoto
  | Tprint | Tsleep | Tskip
  | Ttrue | Tfalse | Tnull
  | Tty_int | Tty_float | Tty_bool | Tty_str
  (* punctuation *)
  | Tlbrace | Trbrace | Tlparen | Trparen | Tlbracket | Trbracket
  | Tcomma | Tsemi | Tcolon
  (* operators *)
  | Tassign
  | Teq | Tne | Tlt | Tle | Tgt | Tge
  | Tplus | Tminus | Tstar | Tslash | Tpercent
  | Tandand | Toror | Tbang | Tamp | Tcaret
  | Teof

let keyword_table =
  [ "module", Tmodule; "var", Tvar; "proc", Tproc; "ref", Tref;
    "if", Tif; "else", Telse; "while", Twhile; "return", Treturn;
    "goto", Tgoto; "print", Tprint; "sleep", Tsleep; "skip", Tskip;
    "true", Ttrue; "false", Tfalse; "null", Tnull;
    "int", Tty_int; "float", Tty_float; "bool", Tty_bool;
    "string", Tty_str ]

let to_string = function
  | Tident s -> Printf.sprintf "identifier %S" s
  | Tint_lit i -> string_of_int i
  | Tfloat_lit f -> string_of_float f
  | Tstr_lit s -> Printf.sprintf "%S" s
  | Tmodule -> "module" | Tvar -> "var" | Tproc -> "proc" | Tref -> "ref"
  | Tif -> "if" | Telse -> "else" | Twhile -> "while" | Treturn -> "return"
  | Tgoto -> "goto" | Tprint -> "print" | Tsleep -> "sleep" | Tskip -> "skip"
  | Ttrue -> "true" | Tfalse -> "false" | Tnull -> "null"
  | Tty_int -> "int" | Tty_float -> "float" | Tty_bool -> "bool"
  | Tty_str -> "string"
  | Tlbrace -> "{" | Trbrace -> "}" | Tlparen -> "(" | Trparen -> ")"
  | Tlbracket -> "[" | Trbracket -> "]"
  | Tcomma -> "," | Tsemi -> ";" | Tcolon -> ":"
  | Tassign -> "="
  | Teq -> "==" | Tne -> "!=" | Tlt -> "<" | Tle -> "<=" | Tgt -> ">"
  | Tge -> ">="
  | Tplus -> "+" | Tminus -> "-" | Tstar -> "*" | Tslash -> "/"
  | Tpercent -> "%"
  | Tandand -> "&&" | Toror -> "||" | Tbang -> "!" | Tamp -> "&"
  | Tcaret -> "^"
  | Teof -> "<eof>"
