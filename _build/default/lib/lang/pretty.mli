(** Pretty-printer for MiniProc.

    The printer and {!Parser} round-trip: for any well-formed program [p],
    [Parser.parse_program (Pretty.program_to_string p)] is structurally
    equal to [p] (modulo line numbers). The transform relies on this to
    emit instrumented modules as ordinary source text. *)

val pp_ty : Format.formatter -> Ast.ty -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_lvalue : Format.formatter -> Ast.lvalue -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_block : Format.formatter -> Ast.block -> unit
val pp_proc : Format.formatter -> Ast.proc -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val ty_to_string : Ast.ty -> string
val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val program_to_string : Ast.program -> string
