exception Error of string * int

type state = { mutable tokens : (Token.t * int) list }

let current st =
  match st.tokens with
  | (tok, line) :: _ -> (tok, line)
  | [] -> (Token.Teof, 0)

let peek st = fst (current st)

let peek2 st =
  match st.tokens with
  | _ :: (tok, _) :: _ -> tok
  | _ -> Token.Teof

let line st = snd (current st)

let advance st =
  match st.tokens with
  | _ :: rest -> st.tokens <- rest
  | [] -> ()

let fail st message = raise (Error (message, line st))

let expect st tok =
  let got, ln = current st in
  if got = tok then advance st
  else
    raise
      (Error
         ( Printf.sprintf "expected %s but found %s" (Token.to_string tok)
             (Token.to_string got),
           ln ))

let expect_ident st =
  match current st with
  | Token.Tident name, _ ->
    advance st;
    name
  | tok, ln ->
    raise
      (Error
         (Printf.sprintf "expected identifier, found %s" (Token.to_string tok), ln))

(* ---------------------------------------------------------------- types *)

let parse_type st =
  let base =
    match peek st with
    | Token.Tty_int -> advance st; Ast.Tint
    | Token.Tty_float -> advance st; Ast.Tfloat
    | Token.Tty_bool -> advance st; Ast.Tbool
    | Token.Tty_str -> advance st; Ast.Tstr
    | tok -> fail st (Printf.sprintf "expected a type, found %s" (Token.to_string tok))
  in
  let rec suffixes ty =
    match peek st with
    | Token.Tlbracket when peek2 st = Token.Trbracket ->
      advance st;
      advance st;
      suffixes (Ast.Tarr ty)
    | Token.Tstar ->
      advance st;
      suffixes (Ast.Tptr ty)
    | _ -> ty
  in
  suffixes base

(* ----------------------------------------------------------- expressions *)

(* Precedence climbing: || < && < comparison < ^ < additive <
   multiplicative < unary < postfix. *)

let rec parse_expr_prec st =
  let lhs = parse_and st in
  let rec loop lhs =
    match peek st with
    | Token.Toror ->
      advance st;
      let rhs = parse_and st in
      loop (Ast.Binop (Ast.Or, lhs, rhs))
    | _ -> lhs
  in
  loop lhs

and parse_and st =
  let lhs = parse_cmp st in
  let rec loop lhs =
    match peek st with
    | Token.Tandand ->
      advance st;
      let rhs = parse_cmp st in
      loop (Ast.Binop (Ast.And, lhs, rhs))
    | _ -> lhs
  in
  loop lhs

and parse_cmp st =
  let lhs = parse_cat st in
  let op =
    match peek st with
    | Token.Teq -> Some Ast.Eq
    | Token.Tne -> Some Ast.Ne
    | Token.Tlt -> Some Ast.Lt
    | Token.Tle -> Some Ast.Le
    | Token.Tgt -> Some Ast.Gt
    | Token.Tge -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    let rhs = parse_cat st in
    Ast.Binop (op, lhs, rhs)

and parse_cat st =
  let lhs = parse_add st in
  let rec loop lhs =
    match peek st with
    | Token.Tcaret ->
      advance st;
      let rhs = parse_add st in
      loop (Ast.Binop (Ast.Cat, lhs, rhs))
    | _ -> lhs
  in
  loop lhs

and parse_add st =
  let lhs = parse_mul st in
  let rec loop lhs =
    match peek st with
    | Token.Tplus ->
      advance st;
      let rhs = parse_mul st in
      loop (Ast.Binop (Ast.Add, lhs, rhs))
    | Token.Tminus ->
      advance st;
      let rhs = parse_mul st in
      loop (Ast.Binop (Ast.Sub, lhs, rhs))
    | _ -> lhs
  in
  loop lhs

and parse_mul st =
  let lhs = parse_unary st in
  let rec loop lhs =
    match peek st with
    | Token.Tstar ->
      advance st;
      let rhs = parse_unary st in
      loop (Ast.Binop (Ast.Mul, lhs, rhs))
    | Token.Tslash ->
      advance st;
      let rhs = parse_unary st in
      loop (Ast.Binop (Ast.Div, lhs, rhs))
    | Token.Tpercent ->
      advance st;
      let rhs = parse_unary st in
      loop (Ast.Binop (Ast.Mod, lhs, rhs))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  match peek st with
  | Token.Tminus ->
    advance st;
    let e = parse_unary st in
    Ast.Unop (Ast.Neg, e)
  | Token.Tbang ->
    advance st;
    let e = parse_unary st in
    Ast.Unop (Ast.Not, e)
  | Token.Tamp ->
    advance st;
    let name = expect_ident st in
    expect st Token.Tlbracket;
    let idx = parse_expr_prec st in
    expect st Token.Trbracket;
    (* allow further postfix indexing: (&a[i])[j] *)
    parse_postfix_from st (Ast.Addr (name, idx))
  | _ -> parse_postfix st

and parse_postfix st = parse_postfix_from st (parse_atom st)

and parse_postfix_from st atom =
  let rec loop e =
    match peek st with
    | Token.Tlbracket ->
      advance st;
      let idx = parse_expr_prec st in
      expect st Token.Trbracket;
      loop (Ast.Index (e, idx))
    | _ -> e
  in
  loop atom

and parse_atom st =
  match current st with
  | Token.Tint_lit i, _ ->
    advance st;
    Ast.Int i
  | Token.Tfloat_lit f, _ ->
    advance st;
    Ast.Float f
  | Token.Tstr_lit s, _ ->
    advance st;
    Ast.Str s
  | Token.Ttrue, _ ->
    advance st;
    Ast.Bool true
  | Token.Tfalse, _ ->
    advance st;
    Ast.Bool false
  | Token.Tnull, _ ->
    advance st;
    Ast.Null
  (* [float(e)] and [int(e)] use type keywords as builtin names. *)
  | Token.Tty_float, _ when peek2 st = Token.Tlparen ->
    advance st;
    let args = parse_call_args st in
    Ast.Builtin ("float", args)
  | Token.Tty_int, _ when peek2 st = Token.Tlparen ->
    advance st;
    let args = parse_call_args st in
    Ast.Builtin ("int", args)
  | Token.Tident name, _ ->
    advance st;
    if peek st = Token.Tlparen then begin
      let args = parse_call_args st in
      if Builtin_sig.is_expr_builtin name then Ast.Builtin (name, args)
      else Ast.Call (name, args)
    end
    else Ast.Var name
  | Token.Tlparen, _ ->
    advance st;
    let e = parse_expr_prec st in
    expect st Token.Trparen;
    e
  | tok, ln ->
    raise
      (Error
         ( Printf.sprintf "expected an expression, found %s" (Token.to_string tok),
           ln ))

and parse_call_args st =
  expect st Token.Tlparen;
  if peek st = Token.Trparen then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let e = parse_expr_prec st in
      match peek st with
      | Token.Tcomma ->
        advance st;
        loop (e :: acc)
      | _ ->
        expect st Token.Trparen;
        List.rev (e :: acc)
    in
    loop []
  end

(* ------------------------------------------------------------ statements *)

let expr_to_lvalue st = function
  | Ast.Var name -> Ast.Lvar name
  | Ast.Index (Ast.Var name, idx) -> Ast.Lindex (name, idx)
  | _ -> fail st "builtin output argument must be a variable or an indexed cell"

let builtin_args st (signature : Builtin_sig.stmt_sig) exprs =
  let n = List.length exprs in
  if n < signature.min_arity || ((not signature.variadic) && n > signature.min_arity)
  then
    fail st
      (Printf.sprintf "builtin %s expects %s%d argument(s), got %d"
         signature.s_name
         (if signature.variadic then "at least " else "")
         signature.min_arity n);
  List.mapi
    (fun i e ->
      let is_out =
        match signature.out_positions with
        | `None -> false
        | `All -> true
        | `From k -> i >= k
      in
      if is_out then Ast.Alv (expr_to_lvalue st e) else Ast.Aexpr e)
    exprs

let rec parse_stmt st =
  let label =
    match current st with
    | Token.Tident name, _ when peek2 st = Token.Tcolon ->
      advance st;
      advance st;
      Some name
    | _ -> None
  in
  let ln = line st in
  let kind = parse_stmt_kind st in
  { Ast.label; kind; line = ln }

and parse_stmt_kind st =
  match current st with
  | Token.Tvar, _ ->
    advance st;
    let name = expect_ident st in
    expect st Token.Tcolon;
    let ty = parse_type st in
    let init =
      if peek st = Token.Tassign then begin
        advance st;
        Some (parse_expr_prec st)
      end
      else None
    in
    expect st Token.Tsemi;
    Ast.Decl (name, ty, init)
  | Token.Tif, _ ->
    advance st;
    expect st Token.Tlparen;
    let cond = parse_expr_prec st in
    expect st Token.Trparen;
    let then_b = parse_block st in
    let else_b =
      if peek st = Token.Telse then begin
        advance st;
        if peek st = Token.Tif then [ parse_stmt st ] else parse_block st
      end
      else []
    in
    Ast.If (cond, then_b, else_b)
  | Token.Twhile, _ ->
    advance st;
    expect st Token.Tlparen;
    let cond = parse_expr_prec st in
    expect st Token.Trparen;
    let body = parse_block st in
    Ast.While (cond, body)
  | Token.Treturn, _ ->
    advance st;
    if peek st = Token.Tsemi then begin
      advance st;
      Ast.Return None
    end
    else begin
      let e = parse_expr_prec st in
      expect st Token.Tsemi;
      Ast.Return (Some e)
    end
  | Token.Tgoto, _ ->
    advance st;
    let target = expect_ident st in
    expect st Token.Tsemi;
    Ast.Goto target
  | Token.Tprint, _ ->
    advance st;
    let args = parse_call_args st in
    expect st Token.Tsemi;
    Ast.Print args
  | Token.Tsleep, _ ->
    advance st;
    expect st Token.Tlparen;
    let e = parse_expr_prec st in
    expect st Token.Trparen;
    expect st Token.Tsemi;
    Ast.Sleep e
  | Token.Tskip, _ ->
    advance st;
    expect st Token.Tsemi;
    Ast.Skip
  | Token.Tident name, _ when peek2 st = Token.Tlparen -> (
    advance st;
    let exprs = parse_call_args st in
    expect st Token.Tsemi;
    match Builtin_sig.stmt_sig name with
    | Some signature -> Ast.BuiltinS (name, builtin_args st signature exprs)
    | None ->
      if Builtin_sig.is_expr_builtin name then
        fail st (Printf.sprintf "builtin %s is an expression, not a statement" name)
      else Ast.CallS (name, exprs))
  | Token.Tident _, _ ->
    let lv =
      let name = expect_ident st in
      if peek st = Token.Tlbracket then begin
        advance st;
        let idx = parse_expr_prec st in
        expect st Token.Trbracket;
        Ast.Lindex (name, idx)
      end
      else Ast.Lvar name
    in
    expect st Token.Tassign;
    let e = parse_expr_prec st in
    expect st Token.Tsemi;
    Ast.Assign (lv, e)
  | tok, ln ->
    raise
      (Error
         ( Printf.sprintf "expected a statement, found %s" (Token.to_string tok),
           ln ))

and parse_block st =
  expect st Token.Tlbrace;
  let rec loop acc =
    if peek st = Token.Trbrace then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

(* ----------------------------------------------------------- top level *)

let parse_param st =
  let pref =
    if peek st = Token.Tref then begin
      advance st;
      true
    end
    else false
  in
  let pname = expect_ident st in
  expect st Token.Tcolon;
  let pty = parse_type st in
  { Ast.pname; pty; pref }

let parse_params st =
  expect st Token.Tlparen;
  if peek st = Token.Trparen then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let p = parse_param st in
      match peek st with
      | Token.Tcomma ->
        advance st;
        loop (p :: acc)
      | _ ->
        expect st Token.Trparen;
        List.rev (p :: acc)
    in
    loop []
  end

let parse_program src =
  let st = { tokens = Lexer.tokenize src } in
  expect st Token.Tmodule;
  let module_name = expect_ident st in
  expect st Token.Tsemi;
  let globals = ref [] in
  let procs = ref [] in
  let rec loop () =
    match current st with
    | Token.Teof, _ -> ()
    | Token.Tvar, ln ->
      advance st;
      let gname = expect_ident st in
      expect st Token.Tcolon;
      let gty = parse_type st in
      let ginit =
        if peek st = Token.Tassign then begin
          advance st;
          Some (parse_expr_prec st)
        end
        else None
      in
      expect st Token.Tsemi;
      globals := { Ast.gname; gty; ginit; gline = ln } :: !globals;
      loop ()
    | Token.Tproc, ln ->
      advance st;
      let proc_name = expect_ident st in
      let params = parse_params st in
      let ret =
        if peek st = Token.Tcolon then begin
          advance st;
          Some (parse_type st)
        end
        else None
      in
      let body = parse_block st in
      procs := { Ast.proc_name; params; ret; body; proc_line = ln } :: !procs;
      loop ()
    | tok, ln ->
      raise
        (Error
           ( Printf.sprintf "expected 'var' or 'proc', found %s"
               (Token.to_string tok),
             ln ))
  in
  loop ();
  { Ast.module_name; globals = List.rev !globals; procs = List.rev !procs }

let parse_expr src =
  let st = { tokens = Lexer.tokenize src } in
  let e = parse_expr_prec st in
  (match current st with
  | Token.Teof, _ -> ()
  | tok, ln ->
    raise
      (Error (Printf.sprintf "trailing input: %s" (Token.to_string tok), ln)));
  e
