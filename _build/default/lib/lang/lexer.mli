(** Hand-written lexer for MiniProc source text. *)

exception Error of string * int
(** [Error (message, line)]. *)

val tokenize : string -> (Token.t * int) list
(** Full token stream with line numbers, ending in [Teof].
    @raise Error on malformed input. *)
