open Ast

type error = { message : string; where : string; line : int }

let pp_error ppf e =
  Fmt.pf ppf "%s (in %s, line %d)" e.message e.where e.line

(* Inference result: [Null] has every array/pointer type. *)
type inferred = Known of ty | Nullish

let locals_of_proc proc =
  let acc = ref [] in
  iter_stmts
    (fun s -> match s.kind with Decl (name, ty, _) -> acc := (name, ty) :: !acc | _ -> ())
    proc.body;
  List.rev !acc

let default_value_expr = function
  | Tint -> Int 0
  | Tfloat -> Float 0.0
  | Tbool -> Bool false
  | Tstr -> Str ""
  | Tarr _ | Tptr _ -> Null

let is_scalar = function
  | Tint | Tfloat | Tbool | Tstr -> true
  | Tarr _ | Tptr _ -> false

type ctx = {
  program : program;
  proc : proc;
  locals : (string * ty) list;
  labels : string list;
  mutable errors : error list;
}

let err ctx ?(line = 0) fmt =
  Format.kasprintf
    (fun message ->
      ctx.errors <- { message; where = ctx.proc.proc_name; line } :: ctx.errors)
    fmt

let lookup_var ctx name =
  match List.assoc_opt name ctx.locals with
  | Some ty -> Some ty
  | None -> (
    match List.find_opt (fun p -> String.equal p.pname name) ctx.proc.params with
    | Some p -> Some p.pty
    | None -> (
      match find_global ctx.program name with
      | Some g -> Some g.gty
      | None -> None))

let expr_builtin_result ctx name args_tys =
  let bad expected =
    err ctx "builtin %s: expected %s, got (%s)" name expected
      (String.concat ", "
         (List.map (function Known t -> Pretty.ty_to_string t | Nullish -> "null") args_tys));
    None
  in
  match name, args_tys with
  | "mh_query", [ Known Tstr ] -> Some Tbool
  | "mh_query", _ -> bad "(string)"
  | "mh_getstatus", [] -> Some Tstr
  | "mh_getstatus", _ -> bad "()"
  | "len", [ Known (Tarr _) ] -> Some Tint
  | "len", _ -> bad "(array)"
  | "float", [ Known Tint ] -> Some Tfloat
  | "float", _ -> bad "(int)"
  | "int", [ Known Tfloat ] -> Some Tint
  | "int", _ -> bad "(float)"
  | "str", [ Known (Tint | Tfloat | Tbool | Tstr) ] -> Some Tstr
  | "str", _ -> bad "(scalar)"
  | "alloc_int", [ Known Tint ] -> Some (Tarr Tint)
  | "alloc_float", [ Known Tint ] -> Some (Tarr Tfloat)
  | "alloc_bool", [ Known Tint ] -> Some (Tarr Tbool)
  | "alloc_str", [ Known Tint ] -> Some (Tarr Tstr)
  | ("alloc_int" | "alloc_float" | "alloc_bool" | "alloc_str"), _ -> bad "(int)"
  | "now", [] -> Some Tfloat
  | "now", _ -> bad "()"
  | _, _ ->
    err ctx "unknown expression builtin %s" name;
    None

let rec infer ctx e : inferred option =
  match e with
  | Int _ -> Some (Known Tint)
  | Float _ -> Some (Known Tfloat)
  | Bool _ -> Some (Known Tbool)
  | Str _ -> Some (Known Tstr)
  | Null -> Some Nullish
  | Var name -> (
    match lookup_var ctx name with
    | Some ty -> Some (Known ty)
    | None ->
      err ctx "unbound variable %s" name;
      None)
  | Index (base, idx) -> (
    check_expr ctx idx Tint;
    match infer ctx base with
    | Some (Known (Tarr t | Tptr t)) -> Some (Known t)
    | Some (Known ty) ->
      err ctx "cannot index a value of type %s" (Pretty.ty_to_string ty);
      None
    | Some Nullish ->
      err ctx "cannot index a null literal";
      None
    | None -> None)
  | Addr (name, idx) -> (
    check_expr ctx idx Tint;
    match lookup_var ctx name with
    | Some (Tarr t | Tptr t) -> Some (Known (Tptr t))
    | Some ty ->
      err ctx "cannot take the address of an element of %s: %s" name
        (Pretty.ty_to_string ty);
      None
    | None ->
      err ctx "unbound variable %s" name;
      None)
  | Unop (Neg, e) -> (
    match infer ctx e with
    | Some (Known (Tint | Tfloat)) as ok -> ok
    | Some _ ->
      err ctx "unary '-' expects int or float";
      None
    | None -> None)
  | Unop (Not, e) ->
    check_expr ctx e Tbool;
    Some (Known Tbool)
  | Binop (op, a, b) -> infer_binop ctx op a b
  | Call (name, args) -> (
    match find_proc ctx.program name with
    | None ->
      err ctx "call to undefined procedure %s" name;
      None
    | Some callee -> (
      check_call_args ctx name callee args;
      match callee.ret with
      | Some ty -> Some (Known ty)
      | None ->
        err ctx "procedure %s returns no value; it cannot be used in an expression"
          name;
        None))
  | Builtin (name, args) -> (
    let arg_tys = List.map (fun a -> infer ctx a) args in
    if List.exists Option.is_none arg_tys then None
    else
      match expr_builtin_result ctx name (List.map Option.get arg_tys) with
      | Some ty -> Some (Known ty)
      | None -> None)

and infer_binop ctx op a b =
  let known t = Some (Known t) in
  match op with
  | Add | Sub | Mul | Div -> (
    match infer ctx a, infer ctx b with
    | Some (Known Tint), Some (Known Tint) -> known Tint
    | Some (Known Tfloat), Some (Known Tfloat) -> known Tfloat
    (* pointer arithmetic: ptr + int *)
    | Some (Known (Tptr t)), Some (Known Tint) when op = Add || op = Sub ->
      known (Tptr t)
    | Some _, Some _ ->
      err ctx "arithmetic operands must both be int or both float";
      None
    | _, _ -> None)
  | Mod -> (
    match infer ctx a, infer ctx b with
    | Some (Known Tint), Some (Known Tint) -> known Tint
    | Some _, Some _ ->
      err ctx "'%%' expects int operands";
      None
    | _, _ -> None)
  | Eq | Ne -> (
    match infer ctx a, infer ctx b with
    | Some (Known ta), Some (Known tb) when equal_ty ta tb -> known Tbool
    | Some Nullish, Some (Known (Tarr _ | Tptr _))
    | Some (Known (Tarr _ | Tptr _)), Some Nullish
    | Some Nullish, Some Nullish ->
      known Tbool
    | Some _, Some _ ->
      err ctx "'==' / '!=' operands must have the same type";
      None
    | _, _ -> None)
  | Lt | Le | Gt | Ge -> (
    match infer ctx a, infer ctx b with
    | Some (Known Tint), Some (Known Tint)
    | Some (Known Tfloat), Some (Known Tfloat)
    | Some (Known Tstr), Some (Known Tstr) ->
      known Tbool
    | Some _, Some _ ->
      err ctx "ordering comparisons expect int, float or string operands";
      None
    | _, _ -> None)
  | And | Or ->
    check_expr ctx a Tbool;
    check_expr ctx b Tbool;
    known Tbool
  | Cat -> (
    match infer ctx a, infer ctx b with
    | Some (Known Tstr), Some (Known Tstr) -> known Tstr
    | Some _, Some _ ->
      err ctx "'^' expects string operands";
      None
    | _, _ -> None)

and check_expr ctx e expected =
  match infer ctx e with
  | None -> ()
  | Some Nullish ->
    if not (match expected with Tarr _ | Tptr _ -> true | _ -> false) then
      err ctx "null where a value of type %s was expected"
        (Pretty.ty_to_string expected)
  | Some (Known actual) ->
    if not (equal_ty actual expected) then
      err ctx "expected %s but found %s" (Pretty.ty_to_string expected)
        (Pretty.ty_to_string actual)

and check_call_args ctx name callee args =
  let n_params = List.length callee.params and n_args = List.length args in
  if n_params <> n_args then
    err ctx "%s expects %d argument(s), got %d" name n_params n_args
  else
    List.iter2
      (fun param arg ->
        if param.pref then begin
          match arg with
          | Var var_name -> (
            match lookup_var ctx var_name with
            | Some ty when equal_ty ty param.pty -> ()
            | Some ty ->
              err ctx
                "%s: ref parameter %s has type %s but variable %s has type %s" name
                param.pname (Pretty.ty_to_string param.pty) var_name
                (Pretty.ty_to_string ty)
            | None -> err ctx "unbound variable %s" var_name)
          | _ ->
            err ctx "%s: argument for ref parameter %s must be a plain variable"
              name param.pname
        end
        else check_expr ctx arg param.pty)
      callee.params args

let check_lvalue ctx lv : ty option =
  match lv with
  | Lvar name -> (
    match lookup_var ctx name with
    | Some ty -> Some ty
    | None ->
      err ctx "unbound variable %s" name;
      None)
  | Lindex (name, idx) -> (
    check_expr ctx idx Tint;
    match lookup_var ctx name with
    | Some (Tarr t | Tptr t) -> Some t
    | Some ty ->
      err ctx "cannot index %s of type %s" name (Pretty.ty_to_string ty);
      None
    | None ->
      err ctx "unbound variable %s" name;
      None)

let check_stmt_builtin ctx line name args =
  let scalar_expr e =
    match infer ctx e with
    | Some (Known t) when is_scalar t -> ()
    | Some Nullish | Some (Known _) ->
      err ctx ~line "%s: messages must be scalar values" name
    | None -> ()
  in
  match name, args with
  | "mh_init", [] -> ()
  | "mh_read", [ Aexpr iface; Alv target ] -> (
    check_expr ctx iface Tstr;
    match check_lvalue ctx target with
    | Some t when is_scalar t -> ()
    | Some _ -> err ctx ~line "mh_read: target must have a scalar type"
    | None -> ())
  | "mh_write", [ Aexpr iface; Aexpr value ] ->
    check_expr ctx iface Tstr;
    scalar_expr value
  | "mh_capture", Aexpr location :: values ->
    check_expr ctx location Tint;
    List.iter
      (function
        | Aexpr e -> ignore (infer ctx e)
        | Alv _ -> err ctx ~line "mh_capture takes expressions")
      values
  | "mh_restore", Alv location :: targets -> (
    (match check_lvalue ctx location with
    | Some Tint | None -> ()
    | Some _ -> err ctx ~line "mh_restore: the location target must be an int");
    List.iter
      (function
        | Alv lv -> ignore (check_lvalue ctx lv)
        | Aexpr _ -> err ctx ~line "mh_restore takes lvalues")
      targets)
  | "mh_encode", [] | "mh_decode", [] -> ()
  | "signal", [ Aexpr (Str handler) ] -> (
    match find_proc ctx.program handler with
    | Some p when p.params = [] && p.ret = None -> ()
    | Some _ ->
      err ctx ~line "signal handler %s must take no parameters and return nothing"
        handler
    | None -> err ctx ~line "signal handler %s is not defined" handler)
  | "signal", [ Aexpr _ ] ->
    err ctx ~line "signal expects a string literal naming the handler procedure"
  | _, _ -> err ctx ~line "malformed builtin statement %s" name

let rec check_stmt ctx (s : stmt) =
  let line = s.line in
  (match s.label with
  | Some label ->
    let count = List.length (List.filter (String.equal label) ctx.labels) in
    if count > 1 then err ctx ~line "duplicate label %s" label
  | None -> ());
  match s.kind with
  | Decl (_, _, init) -> (
    match init, s.kind with
    | Some e, Decl (_, ty, _) -> check_expr ctx e ty
    | _ -> ())
  | Assign (lv, e) -> (
    match check_lvalue ctx lv with
    | Some ty -> check_expr ctx e ty
    | None -> ignore (infer ctx e))
  | If (cond, then_b, else_b) ->
    check_expr ctx cond Tbool;
    List.iter (check_stmt ctx) then_b;
    List.iter (check_stmt ctx) else_b
  | While (cond, body) ->
    check_expr ctx cond Tbool;
    List.iter (check_stmt ctx) body
  | CallS (name, args) -> (
    match find_proc ctx.program name with
    | None -> err ctx ~line "call to undefined procedure %s" name
    | Some callee -> check_call_args ctx name callee args)
  | Return None ->
    if ctx.proc.ret <> None then
      err ctx ~line "%s must return a value" ctx.proc.proc_name
  | Return (Some e) -> (
    match ctx.proc.ret with
    | Some ty -> check_expr ctx e ty
    | None ->
      err ctx ~line "%s returns no value but a return expression was given"
        ctx.proc.proc_name)
  | Goto target ->
    if not (List.mem target ctx.labels) then
      err ctx ~line "goto %s: no such label in %s" target ctx.proc.proc_name
  | Print args -> List.iter (fun e -> ignore (infer ctx e)) args
  | Sleep e -> (
    match infer ctx e with
    | Some (Known (Tint | Tfloat)) | None -> ()
    | Some _ -> err ctx ~line "sleep expects an int or float duration")
  | BuiltinS (name, args) -> check_stmt_builtin ctx line name args
  | Skip -> ()

let check_proc program proc =
  let locals = locals_of_proc proc in
  let labels = labels_in_block proc.body in
  let ctx = { program; proc; locals; labels; errors = [] } in
  (* duplicate parameter / local names *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p.pname then
        err ctx "duplicate parameter %s" p.pname;
      Hashtbl.replace seen p.pname ())
    proc.params;
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then
        err ctx "duplicate declaration of %s (locals are function-scoped)" name;
      Hashtbl.replace seen name ())
    locals;
  List.iter (check_stmt ctx) proc.body;
  ctx.errors

let check program =
  let errors = ref [] in
  (* duplicate global / procedure names *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun g ->
      if Hashtbl.mem seen g.gname then
        errors :=
          { message = Printf.sprintf "duplicate global %s" g.gname;
            where = "<globals>"; line = g.gline }
          :: !errors;
      Hashtbl.replace seen g.gname ())
    program.globals;
  let seen_procs = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen_procs p.proc_name then
        errors :=
          { message = Printf.sprintf "duplicate procedure %s" p.proc_name;
            where = p.proc_name; line = p.proc_line }
          :: !errors;
      Hashtbl.replace seen_procs p.proc_name ())
    program.procs;
  (* global initialisers must be literals or simple expressions over
     literals; they may not call procedures. *)
  List.iter
    (fun g ->
      match g.ginit with
      | Some init when calls_in_block [ stmt (Assign (Lvar g.gname, init)) ] <> [] ->
        errors :=
          { message =
              Printf.sprintf "global %s: initialiser may not call procedures"
                g.gname;
            where = "<globals>"; line = g.gline }
          :: !errors
      | _ -> ())
    program.globals;
  let dummy_proc =
    { proc_name = "<globals>"; params = []; ret = None; body = []; proc_line = 0 }
  in
  List.iter
    (fun g ->
      match g.ginit with
      | Some init ->
        let ctx =
          { program; proc = dummy_proc; locals = []; labels = []; errors = [] }
        in
        check_expr ctx init g.gty;
        errors := ctx.errors @ !errors
      | None -> ())
    program.globals;
  List.iter (fun p -> errors := check_proc program p @ !errors) program.procs;
  match List.rev !errors with [] -> Ok () | es -> Error es

let check_exn program =
  match check program with
  | Ok () -> ()
  | Error errors ->
    let rendered = List.map (fun e -> Fmt.str "%a" pp_error e) errors in
    failwith ("type errors:\n  " ^ String.concat "\n  " rendered)
