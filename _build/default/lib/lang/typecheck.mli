(** Static checks for MiniProc programs.

    Verifies name resolution, types, arities, by-reference argument shape,
    label/goto consistency, and builtin usage. Locals are function-scoped
    (as in the paper's C): a declaration anywhere in a procedure body
    creates a cell that exists for the whole activation, zero-initialised
    at frame entry. *)

type error = { message : string; where : string; line : int }

val pp_error : Format.formatter -> error -> unit

val check : Ast.program -> (unit, error list) result
(** All errors found, or [Ok ()] for a well-formed program. *)

val check_exn : Ast.program -> unit
(** @raise Failure with a rendered error list. *)

val locals_of_proc : Ast.proc -> (string * Ast.ty) list
(** Every local declared anywhere in the body, in declaration order
    (excludes parameters). Shared with the transform, which captures
    parameters plus these locals at call-site edges. *)

val default_value_expr : Ast.ty -> Ast.expr
(** The dummy/zero literal for a type: [0], [0.0], [false], [""], [null].
    Used both for zero-initialisation and for the transform's
    dummy-argument substitution (paper §3). *)
