(* Abstract syntax of MiniProc, the statically-scoped single-threaded
   module language that the reconfiguration transformation rewrites.

   MiniProc mirrors the C subset used in the paper: scalar types, heap
   arrays with pointers, by-reference parameters (C's out-pointers),
   labels and [goto] (restore blocks jump from a procedure's entry into
   loop bodies), and the POLYLITH communication builtins. *)

type ty =
  | Tint
  | Tfloat
  | Tbool
  | Tstr
  | Tarr of ty  (* heap-allocated array of [ty] *)
  | Tptr of ty  (* pointer into an array of [ty] *)

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Cat  (* string concatenation *)

type expr =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Null
  | Var of string
  | Index of expr * expr          (* a[i]; array or pointer base *)
  | Addr of string * expr         (* &a[i], yielding a pointer *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list    (* function call in expression position *)
  | Builtin of string * expr list (* pure builtins: mh_query, len, ... *)

(* Assignment targets. [*p = e] parses as [Lindex (p, Int 0)]. *)
type lvalue =
  | Lvar of string
  | Lindex of string * expr

(* Builtin-statement arguments: some builtins (mh_read, mh_restore) write
   through their arguments, which must therefore be lvalues. *)
type arg =
  | Aexpr of expr
  | Alv of lvalue

type stmt = { label : string option; kind : stmt_kind; line : int }

and stmt_kind =
  | Decl of string * ty * expr option
  | Assign of lvalue * expr
  | If of expr * block * block
  | While of expr * block
  | CallS of string * expr list   (* procedure call as a statement *)
  | Return of expr option
  | Goto of string
  | Print of expr list
  | Sleep of expr
  | BuiltinS of string * arg list (* effectful builtins: mh_read, ... *)
  | Skip

and block = stmt list

type param = { pname : string; pty : ty; pref : bool }

type proc = {
  proc_name : string;
  params : param list;
  ret : ty option;
  body : block;
  proc_line : int;
}

type global = { gname : string; gty : ty; ginit : expr option; gline : int }

type program = {
  module_name : string;
  globals : global list;
  procs : proc list;
}

let stmt ?label ?(line = 0) kind = { label; kind; line }

let find_proc program name =
  List.find_opt (fun p -> String.equal p.proc_name name) program.procs

let find_global program name =
  List.find_opt (fun g -> String.equal g.gname name) program.globals

(* ------------------------------------------------------------------ *)
(* Structural equality, ignoring line numbers. Used by parser/printer
   round-trip tests and by the transform's idempotence checks.         *)

let rec equal_ty a b =
  match a, b with
  | Tint, Tint | Tfloat, Tfloat | Tbool, Tbool | Tstr, Tstr -> true
  | Tarr a, Tarr b | Tptr a, Tptr b -> equal_ty a b
  | (Tint | Tfloat | Tbool | Tstr | Tarr _ | Tptr _), _ -> false

let rec equal_expr a b =
  match a, b with
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Bool x, Bool y -> x = y
  | Str x, Str y -> String.equal x y
  | Null, Null -> true
  | Var x, Var y -> String.equal x y
  | Index (a1, i1), Index (a2, i2) -> equal_expr a1 a2 && equal_expr i1 i2
  | Addr (n1, i1), Addr (n2, i2) -> String.equal n1 n2 && equal_expr i1 i2
  | Unop (o1, e1), Unop (o2, e2) -> o1 = o2 && equal_expr e1 e2
  | Binop (o1, a1, b1), Binop (o2, a2, b2) ->
    o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Call (n1, es1), Call (n2, es2) | Builtin (n1, es1), Builtin (n2, es2) ->
    String.equal n1 n2 && equal_expr_list es1 es2
  | ( ( Int _ | Float _ | Bool _ | Str _ | Null | Var _ | Index _ | Addr _
      | Unop _ | Binop _ | Call _ | Builtin _ ),
      _ ) ->
    false

and equal_expr_list xs ys =
  List.length xs = List.length ys && List.for_all2 equal_expr xs ys

let equal_lvalue a b =
  match a, b with
  | Lvar x, Lvar y -> String.equal x y
  | Lindex (x, i), Lindex (y, j) -> String.equal x y && equal_expr i j
  | (Lvar _ | Lindex _), _ -> false

let equal_arg a b =
  match a, b with
  | Aexpr x, Aexpr y -> equal_expr x y
  | Alv x, Alv y -> equal_lvalue x y
  | (Aexpr _ | Alv _), _ -> false

let rec equal_stmt a b =
  Option.equal String.equal a.label b.label && equal_kind a.kind b.kind

and equal_kind a b =
  match a, b with
  | Decl (n1, t1, e1), Decl (n2, t2, e2) ->
    String.equal n1 n2 && equal_ty t1 t2 && Option.equal equal_expr e1 e2
  | Assign (l1, e1), Assign (l2, e2) -> equal_lvalue l1 l2 && equal_expr e1 e2
  | If (c1, t1, f1), If (c2, t2, f2) ->
    equal_expr c1 c2 && equal_block t1 t2 && equal_block f1 f2
  | While (c1, b1), While (c2, b2) -> equal_expr c1 c2 && equal_block b1 b2
  | CallS (n1, es1), CallS (n2, es2) ->
    String.equal n1 n2 && equal_expr_list es1 es2
  | Return e1, Return e2 -> Option.equal equal_expr e1 e2
  | Goto l1, Goto l2 -> String.equal l1 l2
  | Print es1, Print es2 -> equal_expr_list es1 es2
  | Sleep e1, Sleep e2 -> equal_expr e1 e2
  | BuiltinS (n1, a1), BuiltinS (n2, a2) ->
    String.equal n1 n2
    && List.length a1 = List.length a2
    && List.for_all2 equal_arg a1 a2
  | Skip, Skip -> true
  | ( ( Decl _ | Assign _ | If _ | While _ | CallS _ | Return _ | Goto _
      | Print _ | Sleep _ | BuiltinS _ | Skip ),
      _ ) ->
    false

and equal_block a b =
  List.length a = List.length b && List.for_all2 equal_stmt a b

let equal_param a b =
  String.equal a.pname b.pname && equal_ty a.pty b.pty && a.pref = b.pref

let equal_proc a b =
  String.equal a.proc_name b.proc_name
  && List.length a.params = List.length b.params
  && List.for_all2 equal_param a.params b.params
  && Option.equal equal_ty a.ret b.ret
  && equal_block a.body b.body

let equal_global a b =
  String.equal a.gname b.gname
  && equal_ty a.gty b.gty
  && Option.equal equal_expr a.ginit b.ginit

let equal_program a b =
  String.equal a.module_name b.module_name
  && List.length a.globals = List.length b.globals
  && List.for_all2 equal_global a.globals b.globals
  && List.length a.procs = List.length b.procs
  && List.for_all2 equal_proc a.procs b.procs

(* ------------------------------------------------------------------ *)
(* Traversal helpers shared by the analyses and the transform.         *)

(* Iterate over every statement, recursing into [If] and [While] blocks. *)
let rec iter_stmts f block =
  List.iter
    (fun s ->
      f s;
      match s.kind with
      | If (_, then_b, else_b) ->
        iter_stmts f then_b;
        iter_stmts f else_b
      | While (_, body) -> iter_stmts f body
      | Decl _ | Assign _ | CallS _ | Return _ | Goto _ | Print _ | Sleep _
      | BuiltinS _ | Skip ->
        ())
    block

(* Every procedure name invoked from [block], in statement or expression
   position, in source order (with duplicates). *)
let calls_in_block block =
  let acc = ref [] in
  let rec expr = function
    | Int _ | Float _ | Bool _ | Str _ | Null | Var _ -> ()
    | Index (a, i) -> expr a; expr i
    | Addr (_, i) -> expr i
    | Unop (_, e) -> expr e
    | Binop (_, a, b) -> expr a; expr b
    | Call (name, args) ->
      acc := name :: !acc;
      List.iter expr args
    | Builtin (_, args) -> List.iter expr args
  in
  let lvalue = function Lvar _ -> () | Lindex (_, i) -> expr i in
  let arg = function Aexpr e -> expr e | Alv lv -> lvalue lv in
  let stmt s =
    match s.kind with
    | Decl (_, _, init) -> Option.iter expr init
    | Assign (lv, e) -> lvalue lv; expr e
    | If (c, _, _) | While (c, _) -> expr c
    | CallS (name, args) ->
      acc := name :: !acc;
      List.iter expr args
    | Return e -> Option.iter expr e
    | Goto _ | Skip -> ()
    | Print es -> List.iter expr es
    | Sleep e -> expr e
    | BuiltinS (_, args) -> List.iter arg args
  in
  iter_stmts stmt block;
  List.rev !acc

(* All labels defined in a block, recursively. *)
let labels_in_block block =
  let acc = ref [] in
  iter_stmts (fun s -> Option.iter (fun l -> acc := l :: !acc) s.label) block;
  List.rev !acc
