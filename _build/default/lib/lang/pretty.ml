open Ast

let rec pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tfloat -> Fmt.string ppf "float"
  | Tbool -> Fmt.string ppf "bool"
  | Tstr -> Fmt.string ppf "string"
  | Tarr t -> Fmt.pf ppf "%a[]" pp_ty t
  | Tptr t -> Fmt.pf ppf "%a*" pp_ty t

(* Operator precedence levels, mirroring the parser. Higher binds
   tighter. *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Cat -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

let binop_str = function
  | Or -> "||" | And -> "&&"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Cat -> "^"
  | Add -> "+" | Sub -> "-"
  | Mul -> "*" | Div -> "/" | Mod -> "%"

let float_literal f =
  let s = Printf.sprintf "%.17g" f in
  if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* [prec] is the minimum precedence that may appear unparenthesised. *)
let rec pp_expr_prec prec ppf e =
  match e with
  | Int i -> if i < 0 then Fmt.pf ppf "(0 - %d)" (-i) else Fmt.int ppf i
  | Float f ->
    if f < 0.0 then Fmt.pf ppf "(0.0 - %s)" (float_literal (-.f))
    else Fmt.string ppf (float_literal f)
  | Bool true -> Fmt.string ppf "true"
  | Bool false -> Fmt.string ppf "false"
  | Str s -> Fmt.pf ppf "\"%s\"" (escape_string s)
  | Null -> Fmt.string ppf "null"
  | Var name -> Fmt.string ppf name
  | Index (base, idx) ->
    Fmt.pf ppf "%a[%a]" (pp_expr_prec 8) base (pp_expr_prec 0) idx
  | Addr (name, idx) -> Fmt.pf ppf "&%s[%a]" name (pp_expr_prec 0) idx
  | Unop (Neg, e) -> pp_unary prec ppf "-" e
  | Unop (Not, e) -> pp_unary prec ppf "!" e
  | Binop (op, a, b) ->
    let p = binop_prec op in
    (* comparisons are non-associative: parenthesise comparison
       children on both sides *)
    let left_prec = match op with Eq | Ne | Lt | Le | Gt | Ge -> p + 1 | _ -> p in
    let open_paren = p < prec in
    if open_paren then Fmt.string ppf "(";
    Fmt.pf ppf "%a %s %a" (pp_expr_prec left_prec) a (binop_str op)
      (pp_expr_prec (p + 1)) b;
    if open_paren then Fmt.string ppf ")"
  | Call (name, args) | Builtin (name, args) ->
    Fmt.pf ppf "%s(%a)" name pp_args args

and pp_unary prec ppf sym e =
  let open_paren = prec > 7 in
  if open_paren then Fmt.string ppf "(";
  Fmt.pf ppf "%s%a" sym (pp_expr_prec 7) e;
  if open_paren then Fmt.string ppf ")"

and pp_args ppf args =
  Fmt.list ~sep:(Fmt.any ", ") (pp_expr_prec 0) ppf args

let pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_lvalue ppf = function
  | Lvar name -> Fmt.string ppf name
  | Lindex (name, idx) -> Fmt.pf ppf "%s[%a]" name pp_expr idx

let pp_arg ppf = function
  | Aexpr e -> pp_expr ppf e
  | Alv lv -> pp_lvalue ppf lv

let rec pp_stmt_indent indent ppf s =
  let pad = String.make indent ' ' in
  Fmt.string ppf pad;
  (match s.label with Some l -> Fmt.pf ppf "%s: " l | None -> ());
  match s.kind with
  | Decl (name, ty, None) -> Fmt.pf ppf "var %s: %a;" name pp_ty ty
  | Decl (name, ty, Some init) ->
    Fmt.pf ppf "var %s: %a = %a;" name pp_ty ty pp_expr init
  | Assign (lv, e) -> Fmt.pf ppf "%a = %a;" pp_lvalue lv pp_expr e
  | If (cond, then_b, []) ->
    Fmt.pf ppf "if (%a) %a" pp_expr cond (pp_block_indent indent) then_b
  | If (cond, then_b, else_b) ->
    Fmt.pf ppf "if (%a) %a else %a" pp_expr cond (pp_block_indent indent) then_b
      (pp_block_indent indent) else_b
  | While (cond, body) ->
    Fmt.pf ppf "while (%a) %a" pp_expr cond (pp_block_indent indent) body
  | CallS (name, args) -> Fmt.pf ppf "%s(%a);" name pp_args args
  | Return None -> Fmt.string ppf "return;"
  | Return (Some e) -> Fmt.pf ppf "return %a;" pp_expr e
  | Goto target -> Fmt.pf ppf "goto %s;" target
  | Print args -> Fmt.pf ppf "print(%a);" pp_args args
  | Sleep e -> Fmt.pf ppf "sleep(%a);" pp_expr e
  | BuiltinS (name, args) ->
    Fmt.pf ppf "%s(%a);" name (Fmt.list ~sep:(Fmt.any ", ") pp_arg) args
  | Skip -> Fmt.string ppf "skip;"

and pp_block_indent indent ppf block =
  if block = [] then Fmt.string ppf "{ }"
  else begin
    Fmt.pf ppf "{@\n";
    List.iter (fun s -> Fmt.pf ppf "%a@\n" (pp_stmt_indent (indent + 2)) s) block;
    Fmt.pf ppf "%s}" (String.make indent ' ')
  end

let pp_stmt ppf s = pp_stmt_indent 0 ppf s
let pp_block ppf b = pp_block_indent 0 ppf b

let pp_param ppf { pname; pty; pref } =
  if pref then Fmt.pf ppf "ref %s: %a" pname pp_ty pty
  else Fmt.pf ppf "%s: %a" pname pp_ty pty

let pp_proc ppf p =
  Fmt.pf ppf "proc %s(%a)" p.proc_name
    (Fmt.list ~sep:(Fmt.any ", ") pp_param)
    p.params;
  (match p.ret with Some ty -> Fmt.pf ppf ": %a" pp_ty ty | None -> ());
  Fmt.pf ppf " %a" (pp_block_indent 0) p.body

let pp_global ppf g =
  match g.ginit with
  | None -> Fmt.pf ppf "var %s: %a;" g.gname pp_ty g.gty
  | Some init -> Fmt.pf ppf "var %s: %a = %a;" g.gname pp_ty g.gty pp_expr init

let pp_program ppf p =
  Fmt.pf ppf "module %s;@\n@\n" p.module_name;
  List.iter (fun g -> Fmt.pf ppf "%a@\n" pp_global g) p.globals;
  if p.globals <> [] then Fmt.pf ppf "@\n";
  Fmt.list ~sep:(Fmt.any "@\n@\n") pp_proc ppf p.procs;
  Fmt.pf ppf "@\n"

let ty_to_string t = Fmt.str "%a" pp_ty t
let expr_to_string e = Fmt.str "%a" pp_expr e
let stmt_to_string s = Fmt.str "%a" pp_stmt s
let program_to_string p = Fmt.str "%a" pp_program p
