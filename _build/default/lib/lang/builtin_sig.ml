(* Catalogue of MiniProc builtins: the POLYLITH communication primitives
   of the paper (the mh_ family) plus a handful of language utilities.

   Statement builtins may write through arguments (e.g. [mh_read] stores
   the received message into its second argument, [mh_restore] writes all
   of its arguments); such positions are recorded in [out_positions] so
   the parser can turn those argument expressions into lvalues.

   Variadic builtins ([mh_capture], [mh_restore]) have [variadic = true]:
   the listed arity is a minimum. *)

type stmt_sig = {
  s_name : string;
  min_arity : int;
  variadic : bool;
  out_positions : [ `None | `From of int | `All ];
}

let stmt_builtins =
  [ { s_name = "mh_init"; min_arity = 0; variadic = false; out_positions = `None };
    (* mh_read(interface, target): blocking receive into [target]. *)
    { s_name = "mh_read"; min_arity = 2; variadic = false; out_positions = `From 1 };
    (* mh_write(interface, value): asynchronous send. *)
    { s_name = "mh_write"; min_arity = 2; variadic = false; out_positions = `None };
    (* mh_capture(location, v1, ..., vn): append one frame record to the
       capture buffer. *)
    { s_name = "mh_capture"; min_arity = 1; variadic = true; out_positions = `None };
    (* mh_restore(location, x1, ..., xn): pop the most recent record of the
       restore buffer into the given lvalues. *)
    { s_name = "mh_restore"; min_arity = 1; variadic = true; out_positions = `All };
    (* mh_encode(): divulge the capture buffer as an abstract state image. *)
    { s_name = "mh_encode"; min_arity = 0; variadic = false; out_positions = `None };
    (* mh_decode(): block until a state image arrives; fill restore buffer. *)
    { s_name = "mh_decode"; min_arity = 0; variadic = false; out_positions = `None };
    (* signal(handler_proc_name): install the reconfiguration handler. *)
    { s_name = "signal"; min_arity = 1; variadic = false; out_positions = `None } ]

let expr_builtins =
  (* name, arity *)
  [ "mh_query", 1;      (* pending messages on an interface? *)
    "mh_getstatus", 0;  (* "clone" when started as a restoration *)
    "len", 1;
    "float", 1;
    "int", 1;
    "str", 1;
    "alloc_int", 1;
    "alloc_float", 1;
    "alloc_bool", 1;
    "alloc_str", 1;
    "now", 0 ]

let stmt_sig name = List.find_opt (fun s -> String.equal s.s_name name) stmt_builtins

let is_stmt_builtin name = Option.is_some (stmt_sig name)

let is_expr_builtin name = List.mem_assoc name expr_builtins

let expr_arity name = List.assoc_opt name expr_builtins
