lib/lang/parser.ml: Ast Builtin_sig Lexer List Printf Token
