lib/lang/builtin_sig.ml: List Option String
