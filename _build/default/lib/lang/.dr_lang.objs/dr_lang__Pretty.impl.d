lib/lang/pretty.ml: Ast Buffer Fmt List Printf String
