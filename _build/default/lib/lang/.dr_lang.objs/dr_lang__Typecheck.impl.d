lib/lang/typecheck.ml: Ast Fmt Format Hashtbl List Option Pretty Printf String
