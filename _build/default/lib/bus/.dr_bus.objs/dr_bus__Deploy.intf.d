lib/bus/deploy.mli: Bus Dr_mil
