lib/bus/deploy.ml: Bus Dr_mil List Option Printf Result String
