lib/bus/bus.mli: Dr_interp Dr_lang Dr_mil Dr_sim Dr_state
