lib/bus/bus.ml: Dr_interp Dr_lang Dr_mil Dr_sim Dr_state Float Fmt Format Hashtbl List Option Printf Queue String
