module Spec = Dr_mil.Spec

let ( let* ) = Result.bind

let iface_role config app endpoint =
  let inst_name, if_name = endpoint in
  match Spec.find_instance app inst_name with
  | None -> None
  | Some inst -> (
    match Spec.find_module config inst.inst_module with
    | None -> None
    | Some m ->
      Option.map (fun i -> i.Spec.role) (Spec.find_iface m if_name))

let routes_of_bind config app (bind : Spec.binding_decl) =
  match iface_role config app bind.b_from, iface_role config app bind.b_to with
  | Some Spec.Client, Some Spec.Server ->
    [ (bind.b_from, bind.b_to); (bind.b_to, bind.b_from) ]
  | Some _, Some _ | None, _ | _, None -> [ (bind.b_from, bind.b_to) ]

let host_for (config : Spec.config) (inst : Spec.instance_decl) ~default_host =
  match inst.inst_host with
  | Some h -> h
  | None -> (
    match Spec.find_module config inst.inst_module with
    | Some { machine = Some h; _ } -> h
    | Some _ | None -> default_host)

let deploy bus ~config ~app ~default_host =
  let* () =
    match Dr_mil.Validate.validate config with
    | Ok () -> Ok ()
    | Error errors -> Error (String.concat "; " errors)
  in
  let* application =
    match Spec.find_app config app with
    | Some a -> Ok a
    | None -> Error (Printf.sprintf "no application %s in the configuration" app)
  in
  (* Cross-check each instantiated module's program against its spec. *)
  let* () =
    List.fold_left
      (fun acc (inst : Spec.instance_decl) ->
        let* () = acc in
        match Spec.find_module config inst.inst_module with
        | None -> Ok ()  (* caught by validate *)
        | Some m -> (
          match Bus.registered_program bus inst.inst_module with
          | None ->
            Error
              (Printf.sprintf "module %s has no registered program"
                 inst.inst_module)
          | Some program -> (
            match Dr_mil.Validate.check_program_against_spec m program with
            | Ok () -> Ok ()
            | Error errors -> Error (String.concat "; " errors))))
      (Ok ()) application.instances
  in
  let* () =
    List.fold_left
      (fun acc (inst : Spec.instance_decl) ->
        let* () = acc in
        let spec = Spec.find_module config inst.inst_module in
        let host = host_for config inst ~default_host in
        Bus.spawn bus ~instance:inst.inst_name ~module_name:inst.inst_module
          ~host ?spec ())
      (Ok ()) application.instances
  in
  List.iter
    (fun bind ->
      List.iter
        (fun (src, dst) -> Bus.add_route bus ~src ~dst)
        (routes_of_bind config application bind))
    application.binds;
  Ok ()
