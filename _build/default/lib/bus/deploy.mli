(** Application deployment: the role of the POLYLITH language processor.

    Given a validated configuration specification and an application
    name, spawn every instance on its host and establish the message
    routes implied by the bindings: one route for a [define]→[use]
    binding, a route in each direction for a [client]↔[server] pair. *)

val routes_of_bind :
  Dr_mil.Spec.config ->
  Dr_mil.Spec.application ->
  Dr_mil.Spec.binding_decl ->
  (Bus.endpoint * Bus.endpoint) list
(** The directed routes a binding induces. *)

val deploy :
  Bus.t ->
  config:Dr_mil.Spec.config ->
  app:string ->
  default_host:string ->
  (unit, string) result
(** Validates the configuration, cross-checks each instantiated module's
    registered program against its module specification, spawns the
    instances (host preference: instance [on] clause, then the module's
    [machine] attribute, then [default_host]) and adds the routes.
    Programs must have been registered with {!Bus.register_program}
    under their module names. *)
