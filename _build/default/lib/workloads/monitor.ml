let mil =
  {|
module sensor {
  source = "./sensor.exe";
  define interface out pattern {integer};
}

module display {
  source = "./display.exe";
  client interface temper pattern {integer} accepts {float};
}

module compute {
  source = "./compute.exe";
  machine = "hostA";
  server interface display pattern {integer} returns {float};
  use interface sensor pattern {integer};
  reconfiguration point R state {num, n, rp};
}

module compute_v2 {
  source = "./compute_v2.exe";
  server interface display pattern {integer} returns {float};
  use interface sensor pattern {integer};
  reconfiguration point R state {num, n, rp};
}

application monitor {
  instance display on "hostA";
  instance compute on "hostA";
  instance sensor on "hostA";
  bind "display temper" "compute display";
  bind "sensor out" "compute sensor";
}
|}

let sensor_source =
  {|
module sensor;

var temp: int = 0;

proc main() {
  mh_init();
  while (true) {
    temp = temp + 1;
    mh_write("out", temp);
    sleep(1);
  }
}
|}

let display_source =
  {|
module display;

proc main() {
  var n: int;
  var avg: float;
  n = 4;
  mh_init();
  while (true) {
    mh_write("temper", n);
    mh_read("temper", avg);
    print("avg(", n, ") = ", avg);
    sleep(8);
  }
}
|}

(* Fig. 3: loops forever; on a display request, recursively averages n
   sensor values; otherwise discards one pending value by averaging a
   single reading. The reconfiguration point R sits inside the recursive
   procedure, after the self-call. *)
let compute_body name ~extra_on_reply =
  Printf.sprintf
    {|
module %s;

var served: int = 0;

proc compute(num: int, n: int, ref rp: float) {
  var temper: int;
  if (n <= 0) { rp = 0.0; return; }
  compute(num, n - 1, rp);
  R: mh_read("sensor", temper);
  rp = rp + float(temper) / float(num);
}

proc main() {
  var n: int;
  var response: float;
  mh_init();
  while (true) {
    while (mh_query("display")) {
      mh_read("display", n);
      compute(n, n, response);
      mh_write("display", response);
      served = served + 1;%s
    }
    if (mh_query("sensor")) {
      compute(1, 1, response);
    }
    sleep(2);
  }
}
|}
    name extra_on_reply

let compute_source = compute_body "compute" ~extra_on_reply:""

let compute_v2_source =
  compute_body "compute_v2"
    ~extra_on_reply:{|
      print("served ", served, " request(s)");|}

let sources =
  [ ("sensor", sensor_source);
    ("display", display_source);
    ("compute", compute_source);
    ("compute_v2", compute_v2_source) ]

let hosts =
  [ { Dr_bus.Bus.host_name = "hostA"; arch = Dr_state.Arch.x86_64 };
    { Dr_bus.Bus.host_name = "hostB"; arch = Dr_state.Arch.sparc32 };
    { Dr_bus.Bus.host_name = "hostC"; arch = Dr_state.Arch.arm32 } ]

let load ?options () =
  match Dynrecon.System.load ~mil ~sources ?options () with
  | Ok system -> system
  | Error e -> failwith ("monitor: load failed: " ^ e)

let start ?params system =
  match
    Dynrecon.System.start system ~app:"monitor" ~hosts ?params
      ~default_host:"hostA" ()
  with
  | Ok bus -> bus
  | Error e -> failwith ("monitor: start failed: " ^ e)

let parse_displayed line =
  try Scanf.sscanf line "avg(%d) = %f" (fun n v -> Some (n, v))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let averages_plausible ~n averages =
  let eps = 1e-9 in
  let offset = float_of_int (n - 1) /. 2.0 in
  let rec check prev_end = function
    | [] -> true
    | avg :: rest ->
      let start = avg -. offset in
      let rounded = Float.round start in
      Float.abs (start -. rounded) < eps
      && rounded >= float_of_int (prev_end + 1)
      && check (int_of_float rounded + n - 1) rest
  in
  check 0 averages
