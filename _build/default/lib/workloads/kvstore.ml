let capacity = 64

let mil =
  {|
module store {
  source = "./store.exe";
  use interface set pattern {integer};
  server interface get pattern {integer} returns {integer};
  reconfiguration point R;
}

module client {
  source = "./client.exe";
  define interface set pattern {integer};
  client interface get pattern {integer} accepts {integer};
}

application kv {
  instance store on "hostA";
  instance client on "hostB";
  bind "client set" "store set";
  bind "client get" "store get";
}
|}

(* The table is a heap array reached from a global; a second global
   pointer into the same block exercises aliasing across capture. *)
let store_source =
  Printf.sprintf
    {|
module store;

var table: int[];
var cursor: int*;
var ready: bool = false;

proc apply_set(cmd: int) {
  table[cmd / 1000] = cmd %% 1000;
  cursor = &table[cmd / 1000];
}

proc main() {
  var cmd: int;
  var k: int;
  mh_init();
  if (!ready) {
    table = alloc_int(%d);
    cursor = &table[0];
    ready = true;
  }
  while (true) {
    while (mh_query("set")) {
      mh_read("set", cmd);
      apply_set(cmd);
    }
    while (mh_query("get")) {
      R: mh_read("get", k);
      mh_write("get", table[k]);
    }
    sleep(1);
  }
}
|}
    capacity

(* Keys cycle below the store's capacity; the value stored under key k
   is always k*7, so every reply is checkable: v = k*7. *)
let client_source =
  {|
module client;

proc main() {
  var i: int;
  var k: int;
  var v: int;
  mh_init();
  i = 1;
  while (true) {
    k = i % 60;
    mh_write("set", k * 1000 + k * 7);
    if (i % 3 == 0) {
      mh_write("get", k);
      mh_read("get", v);
      print("got ", k, " -> ", v);
    }
    i = i + 1;
    sleep(3);
  }
}
|}

let sources = [ ("store", store_source); ("client", client_source) ]

let hosts =
  [ { Dr_bus.Bus.host_name = "hostA"; arch = Dr_state.Arch.x86_64 };
    { Dr_bus.Bus.host_name = "hostB"; arch = Dr_state.Arch.arm32 };
    { Dr_bus.Bus.host_name = "hostC"; arch = Dr_state.Arch.sparc32 } ]

let load () =
  match Dynrecon.System.load ~mil ~sources () with
  | Ok system -> system
  | Error e -> failwith ("kvstore: load failed: " ^ e)

let start ?params system =
  match
    Dynrecon.System.start system ~app:"kv" ~hosts ?params ~default_host:"hostA"
      ()
  with
  | Ok bus -> bus
  | Error e -> failwith ("kvstore: start failed: " ^ e)

let encode_set ~key ~value = (key * 1000) + value

let client_got bus =
  List.filter_map
    (fun line ->
      try Scanf.sscanf line "got %d -> %d" (fun k v -> Some (k, v))
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
    (Dr_bus.Bus.outputs bus ~instance:"client")
