(** The Monitor example of the paper (§2, Figs. 1–5): a sensor producing
    temperature values, a display requesting averages, and a compute
    module averaging recursively — with its reconfiguration point inside
    the recursive procedure, so moving it exercises activation-record
    capture mid-recursion. *)

val mil : string
(** Configuration specification (Fig. 2 port). *)

val sensor_source : string
val display_source : string

val compute_source : string
(** Fig. 3 port: the original (uninstrumented) compute module. *)

val compute_v2_source : string
(** A maintenance update of compute: same interfaces and state shape,
    but it also reports how many requests it has served (used by the
    live-update example). *)

val sources : (string * string) list
(** [(module name, source)] for {!Dynrecon.System.load}. *)

val hosts : Dr_bus.Bus.host list
(** Three hosts: hostA (x86_64), hostB (sparc32 — big-endian 32-bit),
    hostC (arm32). *)

val load : ?options:Dr_transform.Instrument.options -> unit -> Dynrecon.System.t
(** Load and prepare the monitor system.
    @raise Failure if loading fails (it must not). *)

val start :
  ?params:Dr_bus.Bus.params ->
  Dynrecon.System.t ->
  Dr_bus.Bus.t
(** Deploy application [monitor] on {!hosts}.
    @raise Failure if deployment fails. *)

val parse_displayed : string -> (int * float) option
(** Parse a display output line "avg(n) = v" into [(n, v)]. *)

val averages_plausible : n:int -> float list -> bool
(** Check that every reported average is the mean of [n] {e consecutive}
    integers from the sensor stream 1,2,3,…, and that successive
    averages consume strictly increasing stream segments — the
    correctness criterion that must survive a migration. *)
