lib/workloads/synthetic.mli: Dr_lang Dr_transform
