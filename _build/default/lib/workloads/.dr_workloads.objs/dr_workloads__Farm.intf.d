lib/workloads/farm.mli: Dr_bus Dynrecon
