lib/workloads/pipeline.ml: Dr_bus Dr_state Dynrecon List Printf Scanf
