lib/workloads/kvstore.ml: Dr_bus Dr_state Dynrecon List Printf Scanf
