lib/workloads/farm.ml: Dr_bus Dr_state Dynrecon List Printf Scanf
