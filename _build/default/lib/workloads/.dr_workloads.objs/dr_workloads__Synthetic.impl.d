lib/workloads/synthetic.ml: Dr_lang Dr_transform Printf
