lib/workloads/pipeline.mli: Dr_bus Dynrecon
