lib/workloads/ring.ml: Dr_bus Dr_interp Dr_state Dynrecon List
