lib/workloads/monitor.ml: Dr_bus Dr_state Dynrecon Float Printf Scanf
