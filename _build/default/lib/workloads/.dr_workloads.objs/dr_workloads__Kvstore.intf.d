lib/workloads/kvstore.mli: Dr_bus Dynrecon
