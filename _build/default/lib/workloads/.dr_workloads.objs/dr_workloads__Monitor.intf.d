lib/workloads/monitor.mli: Dr_bus Dr_transform Dynrecon
