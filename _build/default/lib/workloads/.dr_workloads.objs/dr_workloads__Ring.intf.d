lib/workloads/ring.mli: Dr_bus Dynrecon
