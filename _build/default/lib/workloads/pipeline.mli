(** A three-stage stream-processing application: source → scale → offset
    → sink. Both middle stages are prepared for reconfiguration and
    carry visible state (a processed-items counter), so replacing or
    migrating them mid-stream must neither lose items nor reset the
    counters. *)

val mil : string
val sources : (string * string) list
val hosts : Dr_bus.Bus.host list

val load : unit -> Dynrecon.System.t
val start : ?params:Dr_bus.Bus.params -> Dynrecon.System.t -> Dr_bus.Bus.t

val sink_values : Dr_bus.Bus.t -> int list
(** Values the sink has printed, in order. *)

val expected_prefix : int -> int list
(** The first [k] values the pipeline must emit for input 1,2,3,…:
    [v = x*2 + 100]. *)
