(** A key-value store whose state lives in the heap: a client streams
    [set] commands and issues [get] requests; the store keeps values in
    a heap-allocated array reached through a global. Migrating the store
    exercises heap-block capture and symbolic-pointer translation —
    values written before a migration must be readable after it. *)

val mil : string
val sources : (string * string) list
val hosts : Dr_bus.Bus.host list

val capacity : int

val load : unit -> Dynrecon.System.t
val start : ?params:Dr_bus.Bus.params -> Dynrecon.System.t -> Dr_bus.Bus.t

val encode_set : key:int -> value:int -> int
(** Commands travel as a single integer [key * 1000 + value]. *)

val client_got : Dr_bus.Bus.t -> (int * int) list
(** (key, value) pairs the client printed from [get] replies. *)
