let mil =
  {|
module source {
  source = "./source.exe";
  define interface out pattern {integer};
}

module scale {
  source = "./scale.exe";
  use interface in pattern {integer};
  define interface out pattern {integer};
  reconfiguration point R;
}

module offset {
  source = "./offset.exe";
  use interface in pattern {integer};
  define interface out pattern {integer};
  reconfiguration point R;
}

module sink {
  source = "./sink.exe";
  use interface in pattern {integer};
}

application pipeline {
  instance source on "hostA";
  instance scale on "hostA";
  instance offset on "hostB";
  instance sink on "hostB";
  bind "source out" "scale in";
  bind "scale out" "offset in";
  bind "offset out" "sink in";
}
|}

let source_source =
  {|
module source;

var next: int = 0;

proc main() {
  mh_init();
  while (true) {
    next = next + 1;
    mh_write("out", next);
    sleep(2);
  }
}
|}

let stage_source ~name ~transform =
  Printf.sprintf
    {|
module %s;

var processed: int = 0;

proc main() {
  var x: int;
  mh_init();
  while (true) {
    R: mh_read("in", x);
    mh_write("out", %s);
    processed = processed + 1;
  }
}
|}
    name transform

let scale_source = stage_source ~name:"scale" ~transform:"x * 2"
let offset_source = stage_source ~name:"offset" ~transform:"x + 100"

let sink_source =
  {|
module sink;

var count: int = 0;

proc main() {
  var x: int;
  mh_init();
  while (true) {
    mh_read("in", x);
    count = count + 1;
    print("item ", x);
  }
}
|}

let sources =
  [ ("source", source_source);
    ("scale", scale_source);
    ("offset", offset_source);
    ("sink", sink_source) ]

let hosts =
  [ { Dr_bus.Bus.host_name = "hostA"; arch = Dr_state.Arch.x86_64 };
    { Dr_bus.Bus.host_name = "hostB"; arch = Dr_state.Arch.m68k };
    { Dr_bus.Bus.host_name = "hostC"; arch = Dr_state.Arch.sparc32 } ]

let load () =
  match Dynrecon.System.load ~mil ~sources () with
  | Ok system -> system
  | Error e -> failwith ("pipeline: load failed: " ^ e)

let start ?params system =
  match
    Dynrecon.System.start system ~app:"pipeline" ~hosts ?params
      ~default_host:"hostA" ()
  with
  | Ok bus -> bus
  | Error e -> failwith ("pipeline: start failed: " ^ e)

let sink_values bus =
  List.filter_map
    (fun line ->
      try Scanf.sscanf line "item %d" (fun v -> Some v)
      with Scanf.Scan_failure _ | Failure _ | End_of_file -> None)
    (Dr_bus.Bus.outputs bus ~instance:"sink")

let expected_prefix k = List.init k (fun i -> ((i + 1) * 2) + 100)
