(** A small optimiser for MiniProc, built to study the paper's §4
    observation: "by virtue of where a reconfiguration point is placed,
    it could prohibit certain compiler optimizations such as code
    motion."

    Two passes:

    - {!fold}: constant folding and dead-branch pruning. Purely local;
      never crosses labels (a branch containing a label is not pruned —
      a [goto] or a restore block could jump into it).
    - {!hoist}: loop-invariant code motion. An assignment [x = e] in a
      [while] body is hoisted to a guarded prologue
      ([if (cond) { x = e; }] before the loop) when the motion is
      semantically exact (see conditions below). {b Any label inside the
      loop body is a barrier}: restoration can [goto] into the body past
      the assignment, so moving it out would change behaviour — this is
      precisely how a reconfiguration point inhibits optimisation of the
      loop that contains it.

    Hoisting conditions (all checked conservatively): the assignment
    targets a plain variable assigned nowhere else in the loop; its
    right-hand side and the loop condition are pure and cannot fault
    (no calls, division, indexing or allocation); no variable of the
    right-hand side is assigned anywhere in the loop; the target is not
    read in the body before the assignment nor by the loop condition;
    and the body contains no labels and no [goto].

    The optimiser preserves observable behaviour: for any program,
    running the optimised form produces the same output (tested).
    Instruction counts only improve, except that a hoisted loop which
    never runs pays its one guard check. *)

type stats = {
  folded : int;   (** expressions simplified *)
  pruned : int;   (** dead branches removed *)
  hoisted : int;  (** assignments moved out of loops *)
  blocked_by_labels : int;
      (** loops whose hoisting was inhibited by a label — the §4
          effect *)
}

val fold : Dr_lang.Ast.program -> Dr_lang.Ast.program * stats

val hoist : Dr_lang.Ast.program -> Dr_lang.Ast.program * stats

val optimize : Dr_lang.Ast.program -> Dr_lang.Ast.program * stats
(** [fold] then [hoist]; stats are summed. *)
