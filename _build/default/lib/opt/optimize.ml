open Dr_lang

type stats = {
  folded : int;
  pruned : int;
  hoisted : int;
  blocked_by_labels : int;
}

let zero = { folded = 0; pruned = 0; hoisted = 0; blocked_by_labels = 0 }

let ( ++ ) a b =
  { folded = a.folded + b.folded;
    pruned = a.pruned + b.pruned;
    hoisted = a.hoisted + b.hoisted;
    blocked_by_labels = a.blocked_by_labels + b.blocked_by_labels }

(* ------------------------------------------------------------- folding *)

type counter = { mutable n_folded : int; mutable n_pruned : int }

let rec fold_expr c (e : Ast.expr) : Ast.expr =
  match e with
  | Int _ | Float _ | Bool _ | Str _ | Null | Var _ -> e
  | Index (a, i) -> Index (fold_expr c a, fold_expr c i)
  | Addr (name, i) -> Addr (name, fold_expr c i)
  | Unop (op, inner) -> (
    let inner = fold_expr c inner in
    match op, inner with
    | Ast.Neg, Int i ->
      c.n_folded <- c.n_folded + 1;
      Int (-i)
    | Ast.Neg, Float f ->
      c.n_folded <- c.n_folded + 1;
      Float (-.f)
    | Ast.Not, Bool b ->
      c.n_folded <- c.n_folded + 1;
      Bool (not b)
    | _ -> Unop (op, inner))
  | Binop (op, a, b) -> (
    let a = fold_expr c a and b = fold_expr c b in
    let folded =
      match op, a, b with
      | Ast.Add, Int x, Int y -> Some (Ast.Int (x + y))
      | Ast.Sub, Int x, Int y -> Some (Int (x - y))
      | Ast.Mul, Int x, Int y -> Some (Int (x * y))
      | Ast.Div, Int x, Int y when y <> 0 -> Some (Int (x / y))
      | Ast.Mod, Int x, Int y when y <> 0 -> Some (Int (x mod y))
      | Ast.Add, Float x, Float y -> Some (Float (x +. y))
      | Ast.Sub, Float x, Float y -> Some (Float (x -. y))
      | Ast.Mul, Float x, Float y -> Some (Float (x *. y))
      | Ast.Eq, Int x, Int y -> Some (Bool (x = y))
      | Ast.Ne, Int x, Int y -> Some (Bool (x <> y))
      | Ast.Lt, Int x, Int y -> Some (Bool (x < y))
      | Ast.Le, Int x, Int y -> Some (Bool (x <= y))
      | Ast.Gt, Int x, Int y -> Some (Bool (x > y))
      | Ast.Ge, Int x, Int y -> Some (Bool (x >= y))
      | Ast.And, Bool x, Bool y -> Some (Bool (x && y))
      | Ast.Or, Bool x, Bool y -> Some (Bool (x || y))
      | Ast.And, Bool false, _ -> Some (Bool false)
      | Ast.Or, Bool true, _ -> Some (Bool true)
      | Ast.Cat, Str x, Str y -> Some (Str (x ^ y))
      (* identities *)
      | Ast.Add, e, Int 0 | Ast.Add, Int 0, e -> Some e
      | Ast.Mul, e, Int 1 | Ast.Mul, Int 1, e -> Some e
      | Ast.Sub, e, Int 0 -> Some e
      | _ -> None
    in
    match folded with
    | Some e' ->
      c.n_folded <- c.n_folded + 1;
      e'
    | None -> Binop (op, a, b))
  | Call (name, args) -> Call (name, List.map (fold_expr c) args)
  | Builtin (name, args) -> Builtin (name, List.map (fold_expr c) args)

let fold_arg c = function
  | Ast.Aexpr e -> Ast.Aexpr (fold_expr c e)
  | Ast.Alv (Ast.Lvar _) as a -> a
  | Ast.Alv (Ast.Lindex (name, i)) -> Ast.Alv (Ast.Lindex (name, fold_expr c i))

let rec fold_block c (block : Ast.block) : Ast.block =
  List.concat_map (fold_stmt c) block

and fold_stmt c (s : Ast.stmt) : Ast.stmt list =
  match s.kind with
  | Decl (name, ty, init) ->
    [ { s with kind = Decl (name, ty, Option.map (fold_expr c) init) } ]
  | Assign (lv, e) ->
    let lv =
      match lv with
      | Ast.Lvar _ -> lv
      | Ast.Lindex (name, i) -> Ast.Lindex (name, fold_expr c i)
    in
    [ { s with kind = Assign (lv, fold_expr c e) } ]
  | If (cond, then_b, else_b) -> (
    let cond = fold_expr c cond in
    let then_b = fold_block c then_b and else_b = fold_block c else_b in
    (* prune only branches free of labels (goto / restore targets) *)
    match cond with
    | Bool true when Ast.labels_in_block else_b = [] && s.label = None ->
      c.n_pruned <- c.n_pruned + 1;
      then_b
    | Bool false when Ast.labels_in_block then_b = [] && s.label = None ->
      c.n_pruned <- c.n_pruned + 1;
      else_b
    | _ -> [ { s with kind = If (cond, then_b, else_b) } ])
  | While (cond, body) -> (
    let cond = fold_expr c cond in
    let body = fold_block c body in
    match cond with
    | Bool false when Ast.labels_in_block body = [] && s.label = None ->
      c.n_pruned <- c.n_pruned + 1;
      []
    | _ -> [ { s with kind = While (cond, body) } ])
  | CallS (name, args) ->
    [ { s with kind = CallS (name, List.map (fold_expr c) args) } ]
  | Return e -> [ { s with kind = Return (Option.map (fold_expr c) e) } ]
  | Print es -> [ { s with kind = Print (List.map (fold_expr c) es) } ]
  | Sleep e -> [ { s with kind = Sleep (fold_expr c e) } ]
  | BuiltinS (name, args) ->
    [ { s with kind = BuiltinS (name, List.map (fold_arg c) args) } ]
  | Goto _ | Skip -> [ s ]

let fold (program : Ast.program) =
  let c = { n_folded = 0; n_pruned = 0 } in
  let procs =
    List.map
      (fun (p : Ast.proc) -> { p with body = fold_block c p.body })
      program.procs
  in
  ( { program with procs },
    { zero with folded = c.n_folded; pruned = c.n_pruned } )

(* ------------------------------------------------------------ hoisting *)

(* Pure, fault-free expressions: safe to evaluate early and exactly
   once. *)
let rec pure_expr (e : Ast.expr) =
  match e with
  | Int _ | Float _ | Bool _ | Str _ | Null | Var _ -> true
  | Index _ | Addr _ | Call _ | Builtin _ -> false
  | Unop (_, e) -> pure_expr e
  | Binop ((Div | Mod), _, _) -> false
  | Binop (_, a, b) -> pure_expr a && pure_expr b

let rec free_vars acc (e : Ast.expr) =
  match e with
  | Int _ | Float _ | Bool _ | Str _ | Null -> acc
  | Var v -> v :: acc
  | Index (a, i) -> free_vars (free_vars acc a) i
  | Addr (v, i) -> free_vars (v :: acc) i
  | Unop (_, e) -> free_vars acc e
  | Binop (_, a, b) -> free_vars (free_vars acc a) b
  | Call (_, args) | Builtin (_, args) -> List.fold_left free_vars acc args

(* Variables assigned anywhere in a block (conservative: assignment
   targets, decls, out-arguments of builtins, and every argument of a
   call — ref parameters are indistinguishable without signatures). *)
let assigned_vars (block : Ast.block) =
  let acc = ref [] in
  Ast.iter_stmts
    (fun s ->
      match s.kind with
      | Assign (Lvar v, _) -> acc := v :: !acc
      | Assign (Lindex (v, _), _) -> acc := v :: !acc
      | Decl (v, _, _) -> acc := v :: !acc
      | CallS (_, args) ->
        List.iter
          (fun a -> match a with Ast.Var v -> acc := v :: !acc | _ -> ())
          args
      | BuiltinS (_, args) ->
        List.iter
          (function
            | Ast.Alv (Ast.Lvar v) -> acc := v :: !acc
            | Ast.Alv (Ast.Lindex (v, _)) -> acc := v :: !acc
            | Ast.Aexpr _ -> ())
          args
      | If _ | While _ | Return _ | Goto _ | Print _ | Sleep _ | Skip -> ())
    block;
  List.sort_uniq String.compare !acc

(* All variables read in a statement (shallowly recursive). *)
let reads_of_block (block : Ast.block) =
  let acc = ref [] in
  let expr e = acc := free_vars !acc e in
  Ast.iter_stmts
    (fun s ->
      match s.kind with
      | Decl (_, _, init) -> Option.iter expr init
      | Assign (Lvar _, e) -> expr e
      | Assign (Lindex (v, i), e) ->
        acc := v :: !acc;
        expr i;
        expr e
      | If (c, _, _) | While (c, _) -> expr c
      | CallS (_, args) -> List.iter expr args
      | Return e -> Option.iter expr e
      | Print es -> List.iter expr es
      | Sleep e -> expr e
      | BuiltinS (_, args) ->
        List.iter
          (function
            | Ast.Aexpr e -> expr e
            | Ast.Alv (Ast.Lindex (v, i)) ->
              acc := v :: !acc;
              expr i
            | Ast.Alv (Ast.Lvar _) -> ())
          args
      | Goto _ | Skip -> ())
    block;
  List.sort_uniq String.compare !acc

let contains_goto (block : Ast.block) =
  let found = ref false in
  Ast.iter_stmts
    (fun s -> match s.kind with Goto _ -> found := true | _ -> ())
    block;
  !found

type hoist_counter = { mutable n_hoisted : int; mutable n_blocked : int }

let rec hoist_block hc (block : Ast.block) : Ast.block =
  List.concat_map (hoist_stmt hc) block

and hoist_stmt hc (s : Ast.stmt) : Ast.stmt list =
  match s.kind with
  | If (cond, then_b, else_b) ->
    [ { s with kind = If (cond, hoist_block hc then_b, hoist_block hc else_b) } ]
  | While (cond, body) -> (
    let body = hoist_block hc body in
    let has_labels = Ast.labels_in_block body <> [] in
    let eligible_loop =
      pure_expr cond && (not has_labels) && not (contains_goto body)
    in
    if not eligible_loop then begin
      (* a loop that would otherwise have hoistable work but is pinned by
         a label inside it: the §4 inhibition *)
      if has_labels then hc.n_blocked <- hc.n_blocked + 1;
      [ { s with kind = While (cond, body) } ]
    end
    else begin
      let assigned = assigned_vars body in
      let cond_reads = List.sort_uniq String.compare (free_vars [] cond) in
      (* scan top-level statements; a candidate's target may not be read
         by any earlier top-level statement *)
      let rec scan earlier kept hoisted = function
        | [] -> (List.rev kept, List.rev hoisted)
        | (stmt : Ast.stmt) :: rest -> (
          match stmt.kind with
          | Assign (Lvar x, e)
            when stmt.label = None
                 && pure_expr e
                 && (not (List.mem x (free_vars [] e)))
                 && (not (List.mem x cond_reads))
                 && List.length
                      (List.filter (String.equal x) (assigned_list_of body))
                    = 1
                 && (not
                       (List.exists
                          (fun v -> List.mem v assigned)
                          (free_vars [] e)))
                 && not (List.mem x (reads_of_block earlier)) ->
            scan (earlier @ [ stmt ]) kept (stmt :: hoisted) rest
          | _ -> scan (earlier @ [ stmt ]) (stmt :: kept) hoisted rest)
      in
      let kept, hoisted = scan [] [] [] body in
      if hoisted = [] then [ { s with kind = While (cond, body) } ]
      else begin
        hc.n_hoisted <- hc.n_hoisted + List.length hoisted;
        (* guarded prologue preserves zero-iteration semantics exactly *)
        [ Ast.stmt (Ast.If (cond, hoisted, []));
          { s with kind = While (cond, kept) } ]
      end
    end)
  | Decl _ | Assign _ | CallS _ | Return _ | Goto _ | Print _ | Sleep _
  | BuiltinS _ | Skip ->
    [ s ]

(* every assignment occurrence of each variable, with multiplicity *)
and assigned_list_of (block : Ast.block) =
  let acc = ref [] in
  Ast.iter_stmts
    (fun s ->
      match s.kind with
      | Assign (Lvar v, _) | Decl (v, _, Some _) -> acc := v :: !acc
      | _ -> ())
    block;
  !acc

let hoist (program : Ast.program) =
  let hc = { n_hoisted = 0; n_blocked = 0 } in
  let procs =
    List.map
      (fun (p : Ast.proc) -> { p with body = hoist_block hc p.body })
      program.procs
  in
  ( { program with procs },
    { zero with hoisted = hc.n_hoisted; blocked_by_labels = hc.n_blocked } )

let optimize program =
  let program, s1 = fold program in
  let program, s2 = hoist program in
  (program, s1 ++ s2)
