lib/opt/optimize.ml: Ast Dr_lang List Option String
