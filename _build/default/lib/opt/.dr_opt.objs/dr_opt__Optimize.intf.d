lib/opt/optimize.mli: Dr_lang
