(* The machine's window onto the outside world. The software bus supplies
   an implementation; tests use in-memory stubs. *)

type t = {
  io_query : string -> bool;
      (* are messages pending on this incoming interface? *)
  io_read : string -> Dr_state.Value.t option;
      (* dequeue a message; [None] means the machine must block *)
  io_write : string -> Dr_state.Value.t -> unit;
      (* asynchronous send on an outgoing interface *)
  io_print : string -> unit;
      (* deliver program output *)
  io_now : unit -> float;
      (* current virtual time *)
  io_encode : Dr_state.Image.t -> unit;
      (* divulge a captured state image *)
  io_decode : unit -> Dr_state.Image.t option;
      (* take a delivered state image; [None] means block *)
}

let null ?(print = fun _ -> ()) () =
  { io_query = (fun _ -> false);
    io_read = (fun _ -> None);
    io_write = (fun _ _ -> ());
    io_print = print;
    io_now = (fun () -> 0.0);
    io_encode = (fun _ -> ());
    io_decode = (fun () -> None) }
