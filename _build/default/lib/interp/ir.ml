(* Linear instruction form that MiniProc procedures are lowered to.

   The structured AST cannot execute [goto] into loop bodies — which the
   restore blocks of the transformation require — so each procedure body
   is flattened to an instruction array with explicit jump targets and a
   per-frame program counter.

   Expressions appearing in instructions are call-free: lowering
   extracts every [Ast.Call] into its own [Icall] targeting a fresh
   temporary (A-normal form), and compiles [&&]/[||] to jumps so they
   short-circuit. *)

type instr =
  | Iassign of Dr_lang.Ast.lvalue * Dr_lang.Ast.expr
  | Icall of {
      callee : string;
      args : Dr_lang.Ast.expr list;
      ret_temp : string option;  (* caller temp receiving the result *)
    }
  | Ireturn of Dr_lang.Ast.expr option
  | Ijump of int
  | Icjump of { cond : Dr_lang.Ast.expr; if_false : int }
  | Iprint of Dr_lang.Ast.expr list
  | Isleep of Dr_lang.Ast.expr
  | Ibuiltin of string * Dr_lang.Ast.arg list
  | Iskip

type proc_code = {
  pc_name : string;
  pc_params : Dr_lang.Ast.param list;
  pc_ret : Dr_lang.Ast.ty option;
  pc_locals : (string * Dr_lang.Ast.ty) list;
  pc_temps : string list;
  pc_instrs : instr array;
  pc_labels : (string * int) list;  (* source label -> instruction index *)
}

let pp_instr ppf = function
  | Iassign (lv, e) ->
    Fmt.pf ppf "assign %a = %a" Dr_lang.Pretty.pp_lvalue lv Dr_lang.Pretty.pp_expr e
  | Icall { callee; args; ret_temp } ->
    Fmt.pf ppf "call %s(%a)%a" callee
      (Fmt.list ~sep:(Fmt.any ", ") Dr_lang.Pretty.pp_expr)
      args
      (Fmt.option (fun ppf t -> Fmt.pf ppf " -> %s" t))
      ret_temp
  | Ireturn None -> Fmt.string ppf "return"
  | Ireturn (Some e) -> Fmt.pf ppf "return %a" Dr_lang.Pretty.pp_expr e
  | Ijump target -> Fmt.pf ppf "jump %d" target
  | Icjump { cond; if_false } ->
    Fmt.pf ppf "cjump %a else %d" Dr_lang.Pretty.pp_expr cond if_false
  | Iprint es ->
    Fmt.pf ppf "print(%a)"
      (Fmt.list ~sep:(Fmt.any ", ") Dr_lang.Pretty.pp_expr)
      es
  | Isleep e -> Fmt.pf ppf "sleep %a" Dr_lang.Pretty.pp_expr e
  | Ibuiltin (name, _) -> Fmt.pf ppf "builtin %s" name
  | Iskip -> Fmt.string ppf "skip"

let pp_proc_code ppf code =
  Fmt.pf ppf "@[<v>proc %s:@," code.pc_name;
  Array.iteri (fun i instr -> Fmt.pf ppf "  %3d: %a@," i pp_instr instr) code.pc_instrs;
  Fmt.pf ppf "@]"
