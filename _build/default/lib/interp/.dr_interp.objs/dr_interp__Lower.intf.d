lib/interp/lower.mli: Dr_lang Hashtbl Ir
