lib/interp/io_intf.ml: Dr_state
