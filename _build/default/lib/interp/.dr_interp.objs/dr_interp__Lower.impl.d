lib/interp/lower.ml: Array Ast Dr_lang Hashtbl Ir List Option Printf Typecheck
