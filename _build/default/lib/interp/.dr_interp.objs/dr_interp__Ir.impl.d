lib/interp/ir.ml: Array Dr_lang Fmt
