lib/interp/machine.ml: Array Ast Dr_lang Dr_state Float Fmt Format Hashtbl Io_intf Ir List Lower Option Printf String
