lib/interp/machine.mli: Dr_lang Dr_state Format Hashtbl Io_intf Ir
