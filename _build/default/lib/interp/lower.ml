open Dr_lang

exception Lower_error of string

type builder = {
  mutable instrs : Ir.instr list;  (* reverse order *)
  mutable count : int;
  labels : (string, int) Hashtbl.t;
  mutable fixups : (int * string) list;  (* instr index -> label, for gotos *)
  mutable temps : string list;
  mutable next_temp : int;
}

let emit b instr =
  b.instrs <- instr :: b.instrs;
  b.count <- b.count + 1

(* Reserve a slot whose jump target is patched later. Returns the slot's
   index; [patch] overwrites it. *)
let emit_placeholder b =
  emit b (Ir.Ijump (-1));
  b.count - 1

let patch b index instr =
  let arr = Array.of_list (List.rev b.instrs) in
  arr.(index) <- instr;
  b.instrs <- List.rev (Array.to_list arr)

let fresh_temp b =
  let name = Printf.sprintf "$t%d" b.next_temp in
  b.next_temp <- b.next_temp + 1;
  b.temps <- name :: b.temps;
  name

(* ---------------------------------------------------------- expressions *)

(* Rewrite an expression to be call-free, emitting Icall and
   short-circuit scaffolding as needed. *)
let rec lower_expr b (e : Ast.expr) : Ast.expr =
  match e with
  | Int _ | Float _ | Bool _ | Str _ | Null | Var _ -> e
  | Index (a, i) ->
    let a' = lower_expr b a in
    let i' = lower_expr b i in
    Index (a', i')
  | Addr (name, i) -> Addr (name, lower_expr b i)
  | Unop (op, e) -> Unop (op, lower_expr b e)
  | Binop (And, lhs, rhs) -> lower_short_circuit b ~is_and:true lhs rhs
  | Binop (Or, lhs, rhs) -> lower_short_circuit b ~is_and:false lhs rhs
  | Binop (op, a, bb) ->
    let a' = lower_expr b a in
    let b' = lower_expr b bb in
    Binop (op, a', b')
  | Call (name, args) ->
    let args' = List.map (lower_expr b) args in
    let temp = fresh_temp b in
    emit b (Ir.Icall { callee = name; args = args'; ret_temp = Some temp });
    Var temp
  | Builtin (name, args) -> Builtin (name, List.map (lower_expr b) args)

and lower_short_circuit b ~is_and lhs rhs =
  let temp = fresh_temp b in
  let lhs' = lower_expr b lhs in
  emit b (Ir.Iassign (Lvar temp, lhs'));
  (* For &&: skip the right operand when temp is false.
     For ||: skip it when temp is true. *)
  let guard = if is_and then Ast.Var temp else Ast.Unop (Not, Var temp) in
  let skip_slot = emit_placeholder b in
  let rhs' = lower_expr b rhs in
  emit b (Ir.Iassign (Lvar temp, rhs'));
  patch b skip_slot (Ir.Icjump { cond = guard; if_false = b.count });
  Var temp

let lower_arg b = function
  | Ast.Aexpr e -> Ast.Aexpr (lower_expr b e)
  | Ast.Alv (Lvar name) -> Ast.Alv (Lvar name)
  | Ast.Alv (Lindex (name, i)) -> Ast.Alv (Lindex (name, lower_expr b i))

(* ----------------------------------------------------------- statements *)

let rec lower_stmt b (s : Ast.stmt) =
  (match s.label with
  | Some label -> Hashtbl.replace b.labels label b.count
  | None -> ());
  match s.kind with
  | Decl (name, _, init) -> (
    match init with
    | Some e ->
      let e' = lower_expr b e in
      emit b (Ir.Iassign (Lvar name, e'))
    | None -> ())
  | Assign (lv, e) ->
    let lv' =
      match lv with
      | Ast.Lvar _ -> lv
      | Ast.Lindex (name, i) -> Ast.Lindex (name, lower_expr b i)
    in
    let e' = lower_expr b e in
    emit b (Ir.Iassign (lv', e'))
  | If (cond, then_b, else_b) ->
    let cond' = lower_expr b cond in
    let cond_slot = emit_placeholder b in
    List.iter (lower_stmt b) then_b;
    if else_b = [] then
      patch b cond_slot (Ir.Icjump { cond = cond'; if_false = b.count })
    else begin
      let end_slot = emit_placeholder b in
      patch b cond_slot (Ir.Icjump { cond = cond'; if_false = b.count });
      List.iter (lower_stmt b) else_b;
      patch b end_slot (Ir.Ijump b.count)
    end
  | While (cond, body) ->
    let loop_start = b.count in
    let cond' = lower_expr b cond in
    let cond_slot = emit_placeholder b in
    List.iter (lower_stmt b) body;
    emit b (Ir.Ijump loop_start);
    patch b cond_slot (Ir.Icjump { cond = cond'; if_false = b.count })
  | CallS (name, args) ->
    let args' = List.map (lower_expr b) args in
    emit b (Ir.Icall { callee = name; args = args'; ret_temp = None })
  | Return e ->
    let e' = Option.map (lower_expr b) e in
    emit b (Ir.Ireturn e')
  | Goto target ->
    let slot = emit_placeholder b in
    b.fixups <- (slot, target) :: b.fixups
  | Print es -> emit b (Ir.Iprint (List.map (lower_expr b) es))
  | Sleep e ->
    let e' = lower_expr b e in
    emit b (Ir.Isleep e')
  | BuiltinS (name, args) ->
    let args' = List.map (lower_arg b) args in
    emit b (Ir.Ibuiltin (name, args'))
  | Skip -> emit b Ir.Iskip

let lower_proc (proc : Ast.proc) : Ir.proc_code =
  let b =
    { instrs = []; count = 0; labels = Hashtbl.create 8; fixups = [];
      temps = []; next_temp = 0 }
  in
  List.iter (lower_stmt b) proc.body;
  emit b (Ir.Ireturn None);
  let instrs = Array.of_list (List.rev b.instrs) in
  List.iter
    (fun (slot, target) ->
      match Hashtbl.find_opt b.labels target with
      | Some pc -> instrs.(slot) <- Ir.Ijump pc
      | None ->
        raise
          (Lower_error
             (Printf.sprintf "goto %s in %s: label not found" target
                proc.proc_name)))
    b.fixups;
  { Ir.pc_name = proc.proc_name;
    pc_params = proc.params;
    pc_ret = proc.ret;
    pc_locals = Typecheck.locals_of_proc proc;
    pc_temps = List.rev b.temps;
    pc_instrs = instrs;
    pc_labels = Hashtbl.fold (fun k v acc -> (k, v) :: acc) b.labels [] }

let lower_program (program : Ast.program) =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (p : Ast.proc) -> Hashtbl.replace table p.proc_name (lower_proc p))
    program.procs;
  table
