(** Lowering from the MiniProc AST to the linear {!Ir} form.

    Guarantees:
    - a source label maps to the first instruction generated for the
      statement that carries it, so [goto] re-executes that statement in
      full (including any extracted calls in its expressions);
    - [&&] and [||] short-circuit;
    - every procedure ends with an implicit [return];
    - expressions inside emitted instructions contain no [Ast.Call]
      nodes. *)

exception Lower_error of string

val lower_proc : Dr_lang.Ast.proc -> Ir.proc_code
(** @raise Lower_error on an unresolvable [goto] (the typechecker rejects
    these first). *)

val lower_program : Dr_lang.Ast.program -> (string, Ir.proc_code) Hashtbl.t
