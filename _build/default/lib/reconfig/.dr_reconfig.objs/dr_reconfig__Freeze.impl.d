lib/reconfig/freeze.ml: Bytes Dr_bus Dr_state Fun Option Printf
