lib/reconfig/script.ml: Dr_bus Dr_sim Format List Option Primitives Printf Result String
