lib/reconfig/freeze.mli: Dr_bus Dr_mil
