lib/reconfig/script.mli: Dr_bus Dr_mil
