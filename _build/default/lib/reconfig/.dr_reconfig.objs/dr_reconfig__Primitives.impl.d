lib/reconfig/primitives.ml: Dr_bus Dr_mil Dr_state List Option Printf Result String
