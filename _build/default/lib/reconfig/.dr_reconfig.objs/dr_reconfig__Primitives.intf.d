lib/reconfig/primitives.mli: Dr_bus Dr_mil Dr_state
