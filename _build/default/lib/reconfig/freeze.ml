module Bus = Dr_bus.Bus
module Codec = Dr_state.Codec

let freeze bus ~instance ?(max_events = 1_000_000) () =
  match Bus.instance_module bus ~instance with
  | None -> Error (Printf.sprintf "no such instance %s" instance)
  | Some _ ->
    let result = ref None in
    Bus.on_divulge bus ~instance (fun image -> result := Some image);
    Bus.signal_reconfig bus ~instance;
    Bus.run_while bus ~max_events (fun () -> Option.is_none !result);
    (match !result with
    | None ->
      Error
        (Printf.sprintf
           "%s did not reach a reconfiguration point within the event budget"
           instance)
    | Some image ->
      Bus.kill bus ~instance;
      Ok (Codec.encode_abstract image))

let thaw bus ~instance ~module_name ~host ?spec frozen =
  match Codec.decode_abstract frozen with
  | Error e -> Error (Printf.sprintf "frozen state is corrupt: %s" e)
  | Ok image -> (
    match Bus.spawn bus ~instance ~module_name ~host ?spec ~status:"clone" () with
    | Error _ as e -> e
    | Ok () ->
      Bus.deposit_state bus ~instance image;
      Ok ())

let save ~path frozen =
  try
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_bytes oc frozen);
    Ok ()
  with Sys_error e -> Error e

let load ~path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (Bytes.of_string (really_input_string ic (in_channel_length ic))))
  with Sys_error e -> Error e
