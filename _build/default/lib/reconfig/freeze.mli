(** Freezing a module to persistent storage and thawing it later.

    The abstract state image (§1.2) is not tied to a live migration: the
    same bytes can be written to disk, the application (or the whole
    platform) shut down and upgraded, and the module resumed later —
    possibly on a different machine — from exactly where it stopped.
    This is the "software maintenance of very long-running applications"
    motivation of the paper's introduction, taken across process
    lifetimes. *)

val freeze :
  Dr_bus.Bus.t ->
  instance:string ->
  ?max_events:int ->
  unit ->
  (bytes, string) result
(** Signal the instance, drive the bus until it divulges, and return the
    abstract encoding of its state image. The instance halts (as after
    any capture) and is removed; its routes are left in place for a
    later {!thaw}. *)

val thaw :
  Dr_bus.Bus.t ->
  instance:string ->
  module_name:string ->
  host:string ->
  ?spec:Dr_mil.Spec.module_spec ->
  bytes ->
  (unit, string) result
(** Start a clone from frozen bytes: decode the abstract image, spawn
    the instance with status "clone" and deposit the state. The bytes
    may come from a different platform run; routes must be established
    by the caller (or have survived from before the freeze). *)

val save : path:string -> bytes -> (unit, string) result
val load : path:string -> (bytes, string) result
