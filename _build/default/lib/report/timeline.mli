(** ASCII timeline of an application run: one lane per instance showing
    its lifespan, with reconfiguration events marked, followed by a
    chronological event log. Used by [drc run --timeline] and the
    examples to visualise reconfigurations. *)

val render : ?width:int -> ?events:string list -> Dr_bus.Bus.t -> string
(** [render bus] draws every instance the bus has ever hosted.
    [width] is the number of columns for the bar area (default 60).
    [events] selects which trace categories appear in the log below the
    bars (default: script, signal, state, lifecycle, crash). *)
