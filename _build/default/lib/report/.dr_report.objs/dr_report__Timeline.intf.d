lib/report/timeline.mli: Dr_bus
