lib/report/timeline.ml: Buffer Bytes Dr_bus Dr_interp Dr_sim Float Fmt List Printf String
