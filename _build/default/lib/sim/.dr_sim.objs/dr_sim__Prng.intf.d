lib/sim/prng.mli:
