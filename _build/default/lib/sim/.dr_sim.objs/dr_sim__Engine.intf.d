lib/sim/engine.mli:
