lib/sim/engine.ml: Pqueue
