lib/sim/pqueue.mli:
