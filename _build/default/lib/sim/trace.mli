(** Append-only event trace.

    Components record timestamped, categorised entries; tests and the
    benchmark harness read them back to check ordering properties (e.g. that
    rebinding happens only after the old module divulged its state). *)

type entry = { time : float; category : string; detail : string }

type t

val create : unit -> t

val record : t -> time:float -> category:string -> detail:string -> unit

val entries : t -> entry list
(** In recording order. *)

val by_category : t -> string -> entry list

val length : t -> int

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit

val dump : Format.formatter -> t -> unit
