(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator goes through a [Prng.t] so
    that runs are reproducible from a single integer seed. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the same internal state. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val split : t -> t
(** Derive an independent generator; the parent advances by one step. *)
