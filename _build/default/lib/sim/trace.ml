type entry = { time : float; category : string; detail : string }

type t = { mutable rev_entries : entry list; mutable count : int }

let create () = { rev_entries = []; count = 0 }

let record t ~time ~category ~detail =
  t.rev_entries <- { time; category; detail } :: t.rev_entries;
  t.count <- t.count + 1

let entries t = List.rev t.rev_entries

let by_category t category =
  List.filter (fun e -> String.equal e.category category) (entries t)

let length t = t.count

let clear t =
  t.rev_entries <- [];
  t.count <- 0

let pp_entry ppf e = Fmt.pf ppf "[%8.2f] %-12s %s" e.time e.category e.detail

let dump ppf t = List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) (entries t)
