lib/core/dynrecon.ml: Dr_analysis Dr_baselines Dr_bus Dr_interp Dr_lang Dr_mil Dr_opt Dr_reconfig Dr_sim Dr_state Dr_transform System
