lib/core/system.ml: Dr_bus Dr_lang Dr_mil Dr_opt Dr_reconfig Dr_transform Fmt List Option Printf Result String
