lib/core/system.mli: Dr_bus Dr_lang Dr_mil Dr_transform
