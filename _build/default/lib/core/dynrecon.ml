(** Dynrecon: dynamic reconfiguration of distributed applications.

    An OCaml reproduction of Hofmeister & Purtilo, {e "Dynamic
    Reconfiguration in Distributed Systems: Adapting Software Modules
    for Replacement"} (ICDCS 1993): a platform that automatically
    prepares software modules to participate in dynamic reconfiguration
    — capturing and restoring their process state, including the
    activation-record stack, at programmer-designated reconfiguration
    points.

    Layer map (bottom up):
    - {!Sim}: deterministic discrete-event kernel;
    - {!Lang}: MiniProc, the module source language (AST, lexer, parser,
      typechecker, printer);
    - {!State}: runtime values, abstract state images, portable codecs
      and architectures;
    - {!Analysis}: static call graph, reconfiguration graph, liveness;
    - {!Transform}: the automatic capture/restore instrumentation;
    - {!Interp}: the MiniProc abstract machine;
    - {!Mil}: the configuration language;
    - {!Bus}: the software toolbus (hosts, routing, queues, scheduling);
    - {!Reconfig}: reconfiguration primitives and scripts;
    - {!Baselines}: checkpointing, quiescence and procedure-level-update
      comparison systems;
    - {!System}: the end-to-end facade. *)

module Sim = Dr_sim
module Lang = Dr_lang
module State = Dr_state
module Analysis = Dr_analysis
module Transform = Dr_transform
module Interp = Dr_interp
module Mil = Dr_mil
module Bus = Dr_bus
module Reconfig = Dr_reconfig
module Baselines = Dr_baselines
module Opt = Dr_opt
module System = System
