(** Static validation of configuration specifications.

    Checks, per application: instances reference declared modules,
    binding endpoints name existing instances and interfaces, binding
    directions are compatible (a sending-capable interface bound to a
    receiving-capable one), and message patterns agree across each
    binding (define→use: equal patterns; client↔server: request and
    reply patterns both agree). *)

val validate : Spec.config -> (unit, string list) result

val validate_app : Spec.config -> Spec.application -> (unit, string list) result

val check_program_against_spec :
  Spec.module_spec -> Dr_lang.Ast.program -> (unit, string list) result
(** Cross-check a MiniProc module against its specification: the
    reconfiguration point labels exist in the program, declared state
    variables exist in the procedure containing the point, and every
    interface named in [mh_read]/[mh_write]/[mh_query] literals is
    declared with a compatible direction. *)
