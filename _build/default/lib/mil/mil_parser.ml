module Token = Dr_lang.Token
module Lexer = Dr_lang.Lexer

exception Error of string * int

type state = { mutable tokens : (Token.t * int) list }

let current st =
  match st.tokens with (tok, line) :: _ -> (tok, line) | [] -> (Token.Teof, 0)

let peek st = fst (current st)

let line st = snd (current st)

let advance st =
  match st.tokens with _ :: rest -> st.tokens <- rest | [] -> ()

let fail st message = raise (Error (message, line st))

let expect st tok =
  let got, ln = current st in
  if got = tok then advance st
  else
    raise
      (Error
         ( Printf.sprintf "expected %s but found %s" (Token.to_string tok)
             (Token.to_string got),
           ln ))

let expect_ident st =
  match current st with
  | Token.Tident name, _ ->
    advance st;
    name
  | tok, ln ->
    raise
      (Error
         (Printf.sprintf "expected identifier, found %s" (Token.to_string tok), ln))

let expect_string st =
  match current st with
  | Token.Tstr_lit s, _ ->
    advance st;
    s
  | tok, ln ->
    raise
      (Error
         ( Printf.sprintf "expected string literal, found %s" (Token.to_string tok),
           ln ))

(* Keywords of MIL that arrive as plain identifiers. *)
let at_ident st word =
  match peek st with Token.Tident w -> String.equal w word | _ -> false

let eat_ident st word =
  if at_ident st word then advance st
  else fail st (Printf.sprintf "expected '%s'" word)

let parse_msg_ty st =
  match peek st with
  | Token.Tty_int ->
    advance st;
    Spec.Mint
  | Token.Tty_float ->
    advance st;
    Spec.Mfloat
  | Token.Tty_bool ->
    advance st;
    Spec.Mbool
  | Token.Tty_str ->
    advance st;
    Spec.Mstr
  | Token.Tident "integer" ->
    advance st;
    Spec.Mint
  | Token.Tident "boolean" ->
    advance st;
    Spec.Mbool
  | tok ->
    fail st (Printf.sprintf "expected a message type, found %s" (Token.to_string tok))

let parse_ty_braces st =
  expect st Token.Tlbrace;
  if peek st = Token.Trbrace then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let ty = parse_msg_ty st in
      match peek st with
      | Token.Tcomma ->
        advance st;
        loop (ty :: acc)
      | _ ->
        expect st Token.Trbrace;
        List.rev (ty :: acc)
    in
    loop []
  end

let parse_iface st role =
  eat_ident st "interface";
  let if_name = expect_ident st in
  let pattern = ref [] and accepts = ref [] and returns = ref [] in
  let rec clauses () =
    if at_ident st "pattern" then begin
      advance st;
      pattern := parse_ty_braces st;
      clauses ()
    end
    else if at_ident st "accepts" then begin
      advance st;
      accepts := parse_ty_braces st;
      clauses ()
    end
    else if at_ident st "returns" then begin
      advance st;
      returns := parse_ty_braces st;
      clauses ()
    end
  in
  clauses ();
  expect st Token.Tsemi;
  { Spec.if_name; role; pattern = !pattern; accepts = !accepts; returns = !returns }

let parse_point st =
  eat_ident st "point";
  let rp_label = expect_ident st in
  let rp_state =
    if at_ident st "state" then begin
      advance st;
      expect st Token.Tlbrace;
      if peek st = Token.Trbrace then begin
        advance st;
        Some []
      end
      else begin
        let rec loop acc =
          let v = expect_ident st in
          match peek st with
          | Token.Tcomma ->
            advance st;
            loop (v :: acc)
          | _ ->
            expect st Token.Trbrace;
            Some (List.rev (v :: acc))
        in
        loop []
      end
    end
    else None
  in
  expect st Token.Tsemi;
  { Spec.rp_label; rp_state }

let parse_module st =
  expect st Token.Tmodule;
  let ms_name = expect_ident st in
  expect st Token.Tlbrace;
  let source = ref None and machine = ref None in
  let ifaces = ref [] and points = ref [] and attrs = ref [] in
  let rec items () =
    match current st with
    | Token.Trbrace, _ -> advance st
    | Token.Tident role, _
      when List.mem role [ "client"; "server"; "use"; "define" ] ->
      advance st;
      let role =
        match role with
        | "client" -> Spec.Client
        | "server" -> Spec.Server
        | "use" -> Spec.Use
        | _ -> Spec.Define
      in
      ifaces := parse_iface st role :: !ifaces;
      items ()
    | Token.Tident "reconfiguration", _ ->
      advance st;
      points := parse_point st :: !points;
      items ()
    | Token.Tident key, _ ->
      advance st;
      expect st Token.Tassign;
      let value = expect_string st in
      expect st Token.Tsemi;
      (match key with
      | "source" -> source := Some value
      | "machine" -> machine := Some value
      | _ -> attrs := (key, value) :: !attrs);
      items ()
    | tok, ln ->
      raise
        (Error
           ( Printf.sprintf "unexpected %s in module specification"
               (Token.to_string tok),
             ln ))
  in
  items ();
  { Spec.ms_name; source = !source; machine = !machine;
    ifaces = List.rev !ifaces; points = List.rev !points;
    attrs = List.rev !attrs }

let split_endpoint st raw =
  match String.split_on_char ' ' (String.trim raw) with
  | [ inst; iface ] when inst <> "" && iface <> "" -> (inst, iface)
  | _ ->
    fail st
      (Printf.sprintf "endpoint %S must be \"<instance> <interface>\"" raw)

let parse_application st =
  eat_ident st "application";
  let app_name = expect_ident st in
  expect st Token.Tlbrace;
  let instances = ref [] and binds = ref [] in
  let rec items () =
    match current st with
    | Token.Trbrace, _ -> advance st
    | Token.Tident "instance", _ ->
      advance st;
      let inst_name = expect_ident st in
      let inst_module =
        if peek st = Token.Tassign then begin
          advance st;
          expect_ident st
        end
        else inst_name
      in
      let inst_host =
        if at_ident st "on" then begin
          advance st;
          Some (expect_string st)
        end
        else None
      in
      expect st Token.Tsemi;
      instances := { Spec.inst_name; inst_module; inst_host } :: !instances;
      items ()
    | Token.Tident "bind", _ ->
      advance st;
      let from_raw = expect_string st in
      let to_raw = expect_string st in
      expect st Token.Tsemi;
      binds :=
        { Spec.b_from = split_endpoint st from_raw;
          b_to = split_endpoint st to_raw }
        :: !binds;
      items ()
    | tok, ln ->
      raise
        (Error
           ( Printf.sprintf "unexpected %s in application specification"
               (Token.to_string tok),
             ln ))
  in
  items ();
  { Spec.app_name; instances = List.rev !instances; binds = List.rev !binds }

let parse_config src =
  let st = { tokens = Lexer.tokenize src } in
  let modules = ref [] and apps = ref [] in
  let rec loop () =
    match current st with
    | Token.Teof, _ -> ()
    | Token.Tmodule, _ ->
      modules := parse_module st :: !modules;
      loop ()
    | Token.Tident "application", _ ->
      apps := parse_application st :: !apps;
      loop ()
    | tok, ln ->
      raise
        (Error
           ( Printf.sprintf "expected 'module' or 'application', found %s"
               (Token.to_string tok),
             ln ))
  in
  loop ();
  { Spec.modules = List.rev !modules; apps = List.rev !apps }
