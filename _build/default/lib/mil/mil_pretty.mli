(** Printer for configuration specifications; round-trips with
    {!Mil_parser}. *)

val pp_module : Format.formatter -> Spec.module_spec -> unit
val pp_application : Format.formatter -> Spec.application -> unit
val pp_config : Format.formatter -> Spec.config -> unit
val config_to_string : Spec.config -> string
