lib/mil/spec.ml: Dr_lang List String
