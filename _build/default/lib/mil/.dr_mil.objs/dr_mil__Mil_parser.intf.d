lib/mil/mil_parser.mli: Spec
