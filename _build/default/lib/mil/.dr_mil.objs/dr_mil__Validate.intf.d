lib/mil/validate.mli: Dr_lang Spec
