lib/mil/mil_pretty.mli: Format Spec
