lib/mil/validate.ml: Dr_lang Format Hashtbl List Printf Spec String
