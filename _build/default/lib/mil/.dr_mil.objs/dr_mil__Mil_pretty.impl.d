lib/mil/mil_pretty.ml: Fmt List Spec String
