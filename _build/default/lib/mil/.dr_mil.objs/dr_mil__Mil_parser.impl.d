lib/mil/mil_parser.ml: Dr_lang List Printf Spec String
