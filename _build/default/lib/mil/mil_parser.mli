(** Parser for the configuration language (Fig. 2).

    Syntax (token stream shared with the MiniProc lexer):
    {v
    module compute {
      source = "./compute.exe";
      server interface display pattern {integer} returns {float};
      use interface sensor pattern {integer};
      reconfiguration point R state {num, n, rp};
    }
    application monitor {
      instance display;
      instance c2 = compute on "hostB";
      bind "display temper" "compute display";
    }
    v} *)

exception Error of string * int

val parse_config : string -> Spec.config
(** @raise Error on syntax errors, @raise Dr_lang.Lexer.Error on lexical
    errors. *)
