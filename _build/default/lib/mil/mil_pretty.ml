open Spec

let pp_ty_list ppf tys =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf ty -> Fmt.string ppf (msg_ty_name ty)))
    tys

let pp_iface ppf i =
  Fmt.pf ppf "  %s interface %s" (role_name i.role) i.if_name;
  if i.pattern <> [] then Fmt.pf ppf " pattern %a" pp_ty_list i.pattern;
  if i.accepts <> [] then Fmt.pf ppf " accepts %a" pp_ty_list i.accepts;
  if i.returns <> [] then Fmt.pf ppf " returns %a" pp_ty_list i.returns;
  Fmt.pf ppf ";"

let pp_point ppf p =
  Fmt.pf ppf "  reconfiguration point %s" p.rp_label;
  (match p.rp_state with
  | Some vars ->
    Fmt.pf ppf " state {%a}" (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) vars
  | None -> ());
  Fmt.pf ppf ";"

let pp_module ppf m =
  Fmt.pf ppf "module %s {@\n" m.ms_name;
  (match m.source with
  | Some s -> Fmt.pf ppf "  source = \"%s\";@\n" s
  | None -> ());
  (match m.machine with
  | Some s -> Fmt.pf ppf "  machine = \"%s\";@\n" s
  | None -> ());
  List.iter (fun (k, v) -> Fmt.pf ppf "  %s = \"%s\";@\n" k v) m.attrs;
  List.iter (fun i -> Fmt.pf ppf "%a@\n" pp_iface i) m.ifaces;
  List.iter (fun p -> Fmt.pf ppf "%a@\n" pp_point p) m.points;
  Fmt.pf ppf "}"

let pp_application ppf a =
  Fmt.pf ppf "application %s {@\n" a.app_name;
  List.iter
    (fun inst ->
      Fmt.pf ppf "  instance %s" inst.inst_name;
      if not (String.equal inst.inst_name inst.inst_module) then
        Fmt.pf ppf " = %s" inst.inst_module;
      (match inst.inst_host with
      | Some h -> Fmt.pf ppf " on \"%s\"" h
      | None -> ());
      Fmt.pf ppf ";@\n")
    a.instances;
  List.iter
    (fun b ->
      Fmt.pf ppf "  bind \"%s %s\" \"%s %s\";@\n" (fst b.b_from) (snd b.b_from)
        (fst b.b_to) (snd b.b_to))
    a.binds;
  Fmt.pf ppf "}"

let pp_config ppf c =
  Fmt.list ~sep:(Fmt.any "@\n@\n") pp_module ppf c.modules;
  if c.modules <> [] && c.apps <> [] then Fmt.pf ppf "@\n@\n";
  Fmt.list ~sep:(Fmt.any "@\n@\n") pp_application ppf c.apps;
  Fmt.pf ppf "@\n"

let config_to_string c = Fmt.str "%a" pp_config c
