(** Static call graph of a MiniProc program (paper §3).

    A node per procedure; a directed edge per call site. Call sites in
    statement position and in expression position are distinguished: the
    reconfiguration transformation can only instrument statement-level
    sites, so expression-level calls on a path to a reconfiguration point
    are rejected by {!Reconfig_graph.build}. *)

type position = Stmt_call | Expr_call

type site = {
  caller : string;
  callee : string;
  line : int;
  position : position;
  ordinal : int;
      (** pre-order index of this site among the caller's call sites of
          the same position kind (statement sites and expression sites
          are numbered independently) *)
}

type t

val build : Dr_lang.Ast.program -> t

val procs : t -> string list
(** All procedure names, in program order. *)

val sites : t -> site list
(** All call sites, callers in program order, pre-order within a caller. *)

val sites_from : t -> string -> site list

val callees : t -> string -> string list
(** Distinct callees of a procedure. *)

val reachable_from : t -> string -> string list
(** Procedures reachable from [start] (inclusive), ignoring call
    position. *)

val can_reach : t -> targets:string list -> string list
(** Procedures from which some target is reachable (targets included). *)

val to_dot : t -> string
(** Graphviz rendering (used by the [drc graph] tool and Fig. 6). *)
