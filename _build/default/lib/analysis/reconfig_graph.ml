open Dr_lang

type edge =
  | Call_edge of {
      index : int;
      src : string;
      callee : string;
      line : int;
      ordinal : int;
    }
  | Point_edge of { index : int; src : string; rlabel : string; line : int }

type t = {
  relevant : string list;
  edges : edge list;
  points : (string * string) list;
}

let edge_index = function
  | Call_edge { index; _ } | Point_edge { index; _ } -> index

let edge_src = function
  | Call_edge { src; _ } | Point_edge { src; _ } -> src

let edges_from t src =
  List.filter (fun e -> String.equal (edge_src e) src) t.edges

let is_relevant t name = List.mem name t.relevant

let ( let* ) = Result.bind

let validate_points (program : Ast.program) points =
  let rec check = function
    | [] -> Ok ()
    | (proc_name, label) :: rest -> (
      match Ast.find_proc program proc_name with
      | None ->
        Error
          (Printf.sprintf "reconfiguration point %s.%s: no such procedure"
             proc_name label)
      | Some proc ->
        if List.mem label (Ast.labels_in_block proc.body) then check rest
        else
          Error
            (Printf.sprintf
               "reconfiguration point %s.%s: no such label in procedure"
               proc_name label))
  in
  check points

(* Edges are numbered in a single deterministic order: relevant
   procedures in program order; within a procedure, a pre-order walk of
   the body; a statement contributes its point edge (if its label is a
   reconfiguration point) before its call edge (if it is a call into the
   relevant set). *)
let collect_edges (program : Ast.program) relevant points =
  let next = ref 1 in
  let edges = ref [] in
  let emit e = edges := e :: !edges; incr next in
  let walk_proc (proc : Ast.proc) =
    (* Ordinals count statement-level call sites pre-order, matching
       Callgraph and the transform's own walk. *)
    let ordinal = ref 0 in
    let rec stmt (s : Ast.stmt) =
      (match s.label with
      | Some label when List.mem (proc.proc_name, label) points ->
        emit
          (Point_edge
             { index = !next; src = proc.proc_name; rlabel = label; line = s.line })
      | Some _ | None -> ());
      match s.kind with
      | If (_, then_b, else_b) ->
        List.iter stmt then_b;
        List.iter stmt else_b
      | While (_, body) -> List.iter stmt body
      | CallS (name, _) ->
        let this_ordinal = !ordinal in
        incr ordinal;
        if List.mem name relevant then
          emit
            (Call_edge
               { index = !next; src = proc.proc_name; callee = name;
                 line = s.line; ordinal = this_ordinal })
      | Decl _ | Assign _ | Return _ | Goto _ | Skip | Print _ | Sleep _
      | BuiltinS _ ->
        ()
    in
    List.iter stmt proc.body
  in
  List.iter
    (fun (p : Ast.proc) -> if List.mem p.proc_name relevant then walk_proc p)
    program.procs;
  List.rev !edges

let build (program : Ast.program) ~points =
  let* () = validate_points program points in
  let* () =
    if Option.is_some (Ast.find_proc program "main") then Ok ()
    else Error "program has no main procedure"
  in
  let graph = Callgraph.build program in
  let point_procs = List.sort_uniq String.compare (List.map fst points) in
  let from_main = Callgraph.reachable_from graph "main" in
  let to_points = Callgraph.can_reach graph ~targets:point_procs in
  let relevant = List.filter (fun p -> List.mem p to_points) from_main in
  let* () =
    let unreachable =
      List.filter (fun p -> not (List.mem p relevant)) point_procs
    in
    match unreachable with
    | [] -> Ok ()
    | p :: _ ->
      Error
        (Printf.sprintf
           "procedure %s contains a reconfiguration point but is not reachable \
            from main"
           p)
  in
  (* Reject expression-position calls on paths to reconfiguration
     points: the transformation can only instrument statements. *)
  let* () =
    let offending =
      List.find_opt
        (fun (s : Callgraph.site) ->
          s.position = Callgraph.Expr_call
          && List.mem s.caller relevant
          && List.mem s.callee relevant)
        (Callgraph.sites graph)
    in
    match offending with
    | None -> Ok ()
    | Some s ->
      Error
        (Printf.sprintf
           "call to %s at line %d of %s is in expression position but lies on \
            a path to a reconfiguration point; move it to its own statement"
           s.callee s.line s.caller)
  in
  let edges = collect_edges program relevant points in
  Ok { relevant; edges; points }

let pp ppf t =
  Fmt.pf ppf "@[<v>reconfiguration graph@,  relevant: %a@,"
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    t.relevant;
  List.iter
    (fun e ->
      match e with
      | Call_edge { index; src; callee; line; _ } ->
        Fmt.pf ppf "  edge (%d, S%d): %s -> %s@," index line src callee
      | Point_edge { index; src; rlabel; line } ->
        Fmt.pf ppf "  edge (%d, S%d): %s -> reconfig [%s]@," index line src rlabel)
    t.edges;
  Fmt.pf ppf "@]"

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph reconfiguration_graph {\n";
  List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "  %S;\n" p)) t.relevant;
  Buffer.add_string buf "  \"reconfig\" [shape=doublecircle];\n";
  List.iter
    (fun e ->
      match e with
      | Call_edge { index; src; callee; line; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "  %S -> %S [label=\"(%d, S%d)\"];\n" src callee index
             line)
      | Point_edge { index; src; rlabel; line } ->
        Buffer.add_string buf
          (Printf.sprintf "  %S -> \"reconfig\" [label=\"(%d, %s@S%d)\"];\n" src
             index rlabel line))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
