lib/analysis/placement.ml: Ast Callgraph Dr_lang Fmt List Reconfig_graph String
