lib/analysis/liveness.ml: Array Ast Dr_lang Hashtbl List String
