lib/analysis/placement.mli: Dr_lang Format
