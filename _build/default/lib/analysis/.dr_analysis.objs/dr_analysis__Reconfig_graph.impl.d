lib/analysis/reconfig_graph.ml: Ast Buffer Callgraph Dr_lang Fmt List Option Printf Result String
