lib/analysis/liveness.mli: Dr_lang
