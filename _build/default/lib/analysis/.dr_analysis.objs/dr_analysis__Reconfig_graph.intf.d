lib/analysis/reconfig_graph.mli: Dr_lang Format
