lib/analysis/callgraph.mli: Dr_lang
