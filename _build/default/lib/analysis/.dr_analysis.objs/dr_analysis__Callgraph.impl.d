lib/analysis/callgraph.ml: Ast Buffer Dr_lang Hashtbl List Option Printf String
