(** Reconfiguration-point placement advisor.

    Mechanises the paper's §4 discussion: points inside frequently
    executed code respond to reconfiguration requests quickly but are
    tested often (overhead, and they can inhibit optimisation of hot
    loops); points in rarely executed code are cheap but respond slowly.
    "For applications with an execution time on the order of days ...
    placing reconfiguration points where they will be checked regularly
    is more important than placing them where they will be checked
    frequently."

    [advise] examines every labelled statement of a program as a
    candidate reconfiguration point and reports, for each: its loop
    nesting depth (a static proxy for check frequency), how many call
    sites reach its procedure, and what instrumenting it would cost
    (procedures on the reconfiguration graph and capture blocks
    inserted). *)

type tier =
  | Hot   (** inside nested loops: fast response, highest flag-test cost *)
  | Warm  (** inside one loop: checked regularly *)
  | Cold  (** straight-line code: checked at most once per invocation *)

type advice = {
  a_proc : string;
  a_label : string;
  a_line : int;
  a_loop_depth : int;
  a_caller_sites : int;  (** call sites targeting the containing procedure *)
  a_relevant_procs : int;  (** procedures instrumented if this point is chosen *)
  a_call_edges : int;  (** capture blocks that would be inserted *)
  a_tier : tier;
  a_viable : string option;  (** [Some reason] when the point is unusable *)
}

val advise : Dr_lang.Ast.program -> advice list
(** One entry per labelled statement in a procedure reachable from
    [main], best-responding first (deepest loops first, then by line).
    Labels whose procedures cannot be instrumented (e.g. only reachable
    through expression-position calls) carry [a_viable = Some reason]. *)

val tier_name : tier -> string

val pp_advice : Format.formatter -> advice -> unit
