open Dr_lang

type position = Stmt_call | Expr_call

type site = {
  caller : string;
  callee : string;
  line : int;
  position : position;
  ordinal : int;
}

type t = { proc_names : string list; all_sites : site list }

(* Pre-order walk over a procedure body collecting call sites. Expression
   subtrees are visited left-to-right before the statement's own call (a
   statement call's arguments are visited first, matching evaluation
   order in the interpreter's lowering). *)
let sites_of_proc (proc : Ast.proc) =
  let acc = ref [] in
  let stmt_counter = ref 0 in
  let expr_counter = ref 0 in
  let add callee line position =
    let counter =
      match position with Stmt_call -> stmt_counter | Expr_call -> expr_counter
    in
    acc :=
      { caller = proc.proc_name; callee; line; position; ordinal = !counter }
      :: !acc;
    incr counter
  in
  let rec expr line (e : Ast.expr) =
    match e with
    | Int _ | Float _ | Bool _ | Str _ | Null | Var _ -> ()
    | Index (a, i) ->
      expr line a;
      expr line i
    | Addr (_, i) -> expr line i
    | Unop (_, e) -> expr line e
    | Binop (_, a, b) ->
      expr line a;
      expr line b
    | Call (name, args) ->
      List.iter (expr line) args;
      add name line Expr_call
    | Builtin (_, args) -> List.iter (expr line) args
  in
  let lvalue line = function
    | Ast.Lvar _ -> ()
    | Ast.Lindex (_, i) -> expr line i
  in
  let arg line = function
    | Ast.Aexpr e -> expr line e
    | Ast.Alv lv -> lvalue line lv
  in
  let rec stmt (s : Ast.stmt) =
    let line = s.line in
    match s.kind with
    | Decl (_, _, init) -> Option.iter (expr line) init
    | Assign (lv, e) ->
      lvalue line lv;
      expr line e
    | If (c, then_b, else_b) ->
      expr line c;
      List.iter stmt then_b;
      List.iter stmt else_b
    | While (c, body) ->
      expr line c;
      List.iter stmt body
    | CallS (name, args) ->
      List.iter (expr line) args;
      add name line Stmt_call
    | Return e -> Option.iter (expr line) e
    | Goto _ | Skip -> ()
    | Print es -> List.iter (expr line) es
    | Sleep e -> expr line e
    | BuiltinS (_, args) -> List.iter (arg line) args
  in
  List.iter stmt proc.body;
  List.rev !acc

let build (program : Ast.program) =
  let proc_names = List.map (fun (p : Ast.proc) -> p.proc_name) program.procs in
  let all_sites = List.concat_map sites_of_proc program.procs in
  { proc_names; all_sites }

let procs t = t.proc_names

let sites t = t.all_sites

let sites_from t caller =
  List.filter (fun s -> String.equal s.caller caller) t.all_sites

let callees t caller =
  List.sort_uniq String.compare
    (List.map (fun s -> s.callee) (sites_from t caller))

let successors t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt tbl s.caller) in
      if not (List.mem s.callee existing) then
        Hashtbl.replace tbl s.caller (s.callee :: existing))
    t.all_sites;
  tbl

let reachable_from t start =
  let succ = successors t in
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      List.iter visit (Option.value ~default:[] (Hashtbl.find_opt succ name))
    end
  in
  visit start;
  List.filter (Hashtbl.mem seen) t.proc_names

let can_reach t ~targets =
  (* reverse reachability *)
  let pred = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt pred s.callee) in
      if not (List.mem s.caller existing) then
        Hashtbl.replace pred s.callee (s.caller :: existing))
    t.all_sites;
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      List.iter visit (Option.value ~default:[] (Hashtbl.find_opt pred name))
    end
  in
  List.iter visit targets;
  List.filter (Hashtbl.mem seen) t.proc_names

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph callgraph {\n";
  List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "  %S;\n" p)) t.proc_names;
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S [label=\"line %d%s\"];\n" s.caller s.callee
           s.line
           (match s.position with Expr_call -> " (expr)" | Stmt_call -> "")))
    t.all_sites;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
