open Dr_lang

type tier = Hot | Warm | Cold

type advice = {
  a_proc : string;
  a_label : string;
  a_line : int;
  a_loop_depth : int;
  a_caller_sites : int;
  a_relevant_procs : int;
  a_call_edges : int;
  a_tier : tier;
  a_viable : string option;
}

let tier_name = function Hot -> "hot" | Warm -> "warm" | Cold -> "cold"

let tier_of_depth depth = if depth >= 2 then Hot else if depth = 1 then Warm else Cold

(* Every labelled statement with its loop nesting depth. *)
let labelled_sites (proc : Ast.proc) =
  let acc = ref [] in
  let rec walk depth (stmts : Ast.block) =
    List.iter
      (fun (s : Ast.stmt) ->
        (match s.label with
        | Some label -> acc := (label, s.line, depth) :: !acc
        | None -> ());
        match s.kind with
        | If (_, then_b, else_b) ->
          walk depth then_b;
          walk depth else_b
        | While (_, body) -> walk (depth + 1) body
        | Decl _ | Assign _ | CallS _ | Return _ | Goto _ | Print _ | Sleep _
        | BuiltinS _ | Skip ->
          ())
      stmts
  in
  walk 0 proc.body;
  List.rev !acc

let advise (program : Ast.program) =
  let graph = Callgraph.build program in
  let reachable = Callgraph.reachable_from graph "main" in
  let caller_sites proc_name =
    List.length
      (List.filter
         (fun (s : Callgraph.site) -> String.equal s.callee proc_name)
         (Callgraph.sites graph))
  in
  let advices =
    List.concat_map
      (fun (proc : Ast.proc) ->
        if not (List.mem proc.proc_name reachable) then []
        else
          List.map
            (fun (label, line, depth) ->
              let relevant_procs, call_edges, viable =
                match
                  Reconfig_graph.build program
                    ~points:[ (proc.proc_name, label) ]
                with
                | Ok rg ->
                  let calls =
                    List.length
                      (List.filter
                         (function
                           | Reconfig_graph.Call_edge _ -> true
                           | Reconfig_graph.Point_edge _ -> false)
                         rg.edges)
                  in
                  (List.length rg.relevant, calls, None)
                | Error reason -> (0, 0, Some reason)
              in
              { a_proc = proc.proc_name;
                a_label = label;
                a_line = line;
                a_loop_depth = depth;
                a_caller_sites = caller_sites proc.proc_name;
                a_relevant_procs = relevant_procs;
                a_call_edges = call_edges;
                a_tier = tier_of_depth depth;
                a_viable = viable })
            (labelled_sites proc))
      program.procs
  in
  List.sort
    (fun a b ->
      match compare b.a_loop_depth a.a_loop_depth with
      | 0 -> compare a.a_line b.a_line
      | c -> c)
    advices

let pp_advice ppf a =
  Fmt.pf ppf "%s.%s (line %d): %s (loop depth %d)" a.a_proc a.a_label a.a_line
    (tier_name a.a_tier) a.a_loop_depth;
  (match a.a_viable with
  | Some reason -> Fmt.pf ppf " — UNUSABLE: %s" reason
  | None ->
    Fmt.pf ppf " — instruments %d procedure(s), %d capture block(s)"
      a.a_relevant_procs a.a_call_edges);
  if a.a_caller_sites > 1 then
    Fmt.pf ppf "; procedure called from %d sites" a.a_caller_sites
