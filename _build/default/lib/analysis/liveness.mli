(** Live-variable analysis for MiniProc procedures.

    The paper notes that "at a reconfiguration point, data-flow analysis
    could be used to determine the set of live variables" (§3). This
    module implements that refinement: the transform can optionally trim
    the captured variable set at a reconfiguration point to the live
    ones.

    The procedure body is flattened into a control-flow graph (labels and
    [goto] included) and a standard backward may-analysis is run to a
    fixpoint. By-reference arguments at call sites are treated as both
    used and defined (conservative). *)

type t

val analyze : ?program:Dr_lang.Ast.program -> Dr_lang.Ast.proc -> t
(** [program], when provided, lets the analysis see callee signatures so
    that by-reference arguments are also treated as defined. *)

val live_at_label : t -> string -> string list option
(** Variables (parameters and locals) live immediately before the
    statement carrying the given label, sorted. [None] if the label does
    not exist. *)

val live_after_call : t -> int -> string list option
(** Variables live immediately after the statement-level call site with
    the given pre-order ordinal (see {!Callgraph.site.ordinal}), i.e. the
    set a capture block at that site must preserve. [None] if there is no
    such call site. *)

val live_at_entry : t -> string list
(** Variables live on entry to the procedure (typically the parameters
    that are read before being written). *)

val used_anywhere : t -> string list
(** All variables referenced anywhere in the body (a coarse upper bound,
    useful for sanity checks). *)
