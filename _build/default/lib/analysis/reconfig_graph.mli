(** The reconfiguration graph (paper §3, Fig. 6).

    Starting from the static call graph, keep only procedures lying on a
    path from [main] to a procedure containing a reconfiguration point.
    Add one edge per statement-level call site between such procedures
    (labelled with its source line, standing in for the paper's "line
    number of the call"), plus a distinguished [reconfig] node with one
    edge per reconfiguration point. Edges are numbered consecutively from
    1; these numbers are the resume locations stored in captured state
    records. *)

type edge =
  | Call_edge of {
      index : int;
      src : string;
      callee : string;
      line : int;
      ordinal : int;
          (** pre-order call-site index within [src] (counting every call
              site, matching {!Callgraph.site.ordinal}) *)
    }
  | Point_edge of { index : int; src : string; rlabel : string; line : int }

type t = {
  relevant : string list;  (** procedures to instrument, program order *)
  edges : edge list;       (** ascending by [index] *)
  points : (string * string) list;  (** (procedure, label) pairs *)
}

val build :
  Dr_lang.Ast.program ->
  points:(string * string) list ->
  (t, string) result
(** [points] are [(procedure, label)] pairs naming programmer-designated
    reconfiguration points. Errors include: unknown procedure or label, a
    point unreachable from [main], no [main], and an expression-position
    call site on a path to a point (the transformation instruments
    statements, so such programs are rejected). *)

val edge_index : edge -> int

val edge_src : edge -> string

val edges_from : t -> string -> edge list

val is_relevant : t -> string -> bool

val pp : Format.formatter -> t -> unit

val to_dot : t -> string
