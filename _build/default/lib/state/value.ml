type t =
  | Vint of int
  | Vfloat of float
  | Vbool of bool
  | Vstr of string
  | Varr of int
  | Vptr of int * int
  | Vnull

let equal a b =
  match a, b with
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> Float.equal x y
  | Vbool x, Vbool y -> x = y
  | Vstr x, Vstr y -> String.equal x y
  | Varr x, Varr y -> x = y
  | Vptr (x, i), Vptr (y, j) -> x = y && i = j
  | Vnull, Vnull -> true
  | (Vint _ | Vfloat _ | Vbool _ | Vstr _ | Varr _ | Vptr _ | Vnull), _ -> false

let pp ppf = function
  | Vint i -> Fmt.int ppf i
  | Vfloat f -> Fmt.pf ppf "%g" f
  | Vbool b -> Fmt.bool ppf b
  | Vstr s -> Fmt.pf ppf "%S" s
  | Varr block -> Fmt.pf ppf "<arr #%d>" block
  | Vptr (block, off) -> Fmt.pf ppf "<ptr #%d+%d>" block off
  | Vnull -> Fmt.string ppf "null"

let to_string v = Fmt.str "%a" pp v

let type_name = function
  | Vint _ -> "int"
  | Vfloat _ -> "float"
  | Vbool _ -> "bool"
  | Vstr _ -> "string"
  | Varr _ -> "array"
  | Vptr _ -> "pointer"
  | Vnull -> "null"

let default_of_ty : Dr_lang.Ast.ty -> t = function
  | Tint -> Vint 0
  | Tfloat -> Vfloat 0.0
  | Tbool -> Vbool false
  | Tstr -> Vstr ""
  | Tarr _ | Tptr _ -> Vnull

let matches_ty v (ty : Dr_lang.Ast.ty) =
  match v, ty with
  | Vint _, Tint | Vfloat _, Tfloat | Vbool _, Tbool | Vstr _, Tstr -> true
  | Varr _, Tarr _ | Vptr _, Tptr _ -> true
  | Vnull, (Tarr _ | Tptr _) -> true
  | (Vint _ | Vfloat _ | Vbool _ | Vstr _ | Varr _ | Vptr _ | Vnull), _ -> false
