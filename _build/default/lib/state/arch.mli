(** Simulated machine architectures.

    Each simulated host has an architecture that fixes the native wire
    format of a divulged state image: byte order and integer word width.
    Migrating a module between hosts of different architectures must pass
    through the abstract format, exactly as in §1.2 of the paper. *)

type endian = Big | Little

type t = { arch_name : string; endian : endian; word_bits : int }

val x86_64 : t
(** little-endian, 64-bit words. *)

val sparc32 : t
(** big-endian, 32-bit words. *)

val arm32 : t
(** little-endian, 32-bit words. *)

val m68k : t
(** big-endian, 64-bit words (a fictional wide big-endian machine, useful
    for exercising the endianness axis without the width axis). *)

val all : t list

val by_name : string -> t option

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val int_fits : t -> int -> bool
(** Can this integer be represented in the architecture's word? Migrating
    a value that does not fit is a heterogeneity error. *)
