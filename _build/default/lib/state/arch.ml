type endian = Big | Little

type t = { arch_name : string; endian : endian; word_bits : int }

let x86_64 = { arch_name = "x86_64"; endian = Little; word_bits = 64 }
let sparc32 = { arch_name = "sparc32"; endian = Big; word_bits = 32 }
let arm32 = { arch_name = "arm32"; endian = Little; word_bits = 32 }
let m68k = { arch_name = "m68k"; endian = Big; word_bits = 64 }

let all = [ x86_64; sparc32; arm32; m68k ]

let by_name name = List.find_opt (fun a -> String.equal a.arch_name name) all

let equal a b = String.equal a.arch_name b.arch_name

let pp ppf a =
  Fmt.pf ppf "%s (%s-endian, %d-bit)" a.arch_name
    (match a.endian with Big -> "big" | Little -> "little")
    a.word_bits

let int_fits a v =
  match a.word_bits with
  | 32 -> v >= Int32.to_int Int32.min_int && v <= Int32.to_int Int32.max_int
  | _ -> true
