(** Runtime values of MiniProc.

    Heap data is referenced symbolically: [Varr block] and
    [Vptr (block, offset)] name a heap block by an integer id, never by a
    machine address. This is the paper's pointer translation — "a pointer
    variable containing an explicit address would be translated into a
    variable that points to the nth character of a string located at some
    symbolic address" (§3). *)

type t =
  | Vint of int
  | Vfloat of float
  | Vbool of bool
  | Vstr of string
  | Varr of int          (** heap block id *)
  | Vptr of int * int    (** heap block id, element offset *)
  | Vnull

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val type_name : t -> string

val default_of_ty : Dr_lang.Ast.ty -> t
(** Zero value used for frame-entry initialisation and dummy arguments. *)

val matches_ty : t -> Dr_lang.Ast.ty -> bool
(** Does this value inhabit the given static type? [Vnull] inhabits every
    array/pointer type; block ids are not validated here. *)
