lib/state/arch.ml: Fmt Int32 List String
