lib/state/bin_util.mli: Buffer
