lib/state/codec.ml: Arch Array Bin_util Buffer Dr_lang Format Image Int32 Int64 List String Value
