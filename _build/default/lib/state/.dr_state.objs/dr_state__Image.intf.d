lib/state/image.mli: Dr_lang Format Value
