lib/state/codec.mli: Arch Image
