lib/state/value.ml: Dr_lang Float Fmt String
