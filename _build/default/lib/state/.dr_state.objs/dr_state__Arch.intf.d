lib/state/arch.mli: Format
