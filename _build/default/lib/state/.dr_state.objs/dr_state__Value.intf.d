lib/state/value.mli: Dr_lang Format
