lib/state/image.ml: Array Dr_lang Fmt Hashtbl List String Value
