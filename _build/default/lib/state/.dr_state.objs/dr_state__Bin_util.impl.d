lib/state/bin_util.ml: Buffer Bytes Char Int32 Int64
