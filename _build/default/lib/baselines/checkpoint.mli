(** Checkpointing baseline (paper §4, first paragraph).

    "Our approach does not use checkpointing, in which the entire state
    of the process is saved periodically, and execution is rolled back
    to the most recent checkpoint in order to restore the process."

    This module implements exactly that alternative, on top of the
    machine-specific {!Dr_interp.Machine.clone}: a driver runs a machine
    and snapshots its complete state every [interval] instructions. A
    recovery/migration rolls the process back to the last checkpoint,
    losing the work since. The benchmarks compare its steady-state cost
    (periodic snapshots, paid forever) with the transformation's cost
    (flag tests, with capture paid only at reconfiguration time). *)

type stats = {
  checkpoints_taken : int;
  instructions_run : int;
  snapshot_bytes_total : int;  (** sum of state sizes at each snapshot *)
  snapshot_cost : float;
      (** modelled time cost: bytes × [cost_per_byte] *)
}

type t

val create :
  interval:int ->
  ?cost_per_byte:float ->
  io:Dr_interp.Io_intf.t ->
  Dr_lang.Ast.program ->
  t
(** [interval] is the number of instructions between checkpoints. *)

val machine : t -> Dr_interp.Machine.t

val run : t -> max_steps:int -> unit
(** Run the machine, taking checkpoints on schedule. *)

val stats : t -> stats

val rollback : t -> io:Dr_interp.Io_intf.t -> (Dr_interp.Machine.t * int) option
(** Restore from the most recent checkpoint: a fresh machine positioned
    at the snapshot, plus the number of instructions of lost work
    (progress since that snapshot). [None] if no checkpoint exists. *)
