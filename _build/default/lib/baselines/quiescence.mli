(** Module-level atomicity baseline (paper §4).

    "If the reconfiguration is atomic at the module level ... a module
    cannot be updated while it is executing. Platforms providing this
    level of support are those that reconfigure without module
    participation, such as [9]."

    The updater waits until the target instance is {e quiescent} — not
    executing (sleeping or blocked) with empty message queues — and only
    then swaps in the replacement, which starts {b fresh} (no process
    state survives: that is precisely the limitation module participation
    removes). A busy module postpones the update indefinitely; the
    benchmark measures the wait against the module's duty cycle. *)

type outcome = {
  waited : float;          (** virtual time from request to swap *)
  attempts : int;          (** quiescence checks performed *)
  completed : bool;
}

val is_quiescent : Dr_bus.Bus.t -> instance:string -> ifaces:string list -> bool
(** Sleeping or blocked, with no pending messages on the given
    interfaces. *)

val update_when_quiescent :
  Dr_bus.Bus.t ->
  instance:string ->
  new_instance:string ->
  ?new_module:string ->
  ?poll_interval:float ->
  ?give_up_after:float ->
  on_done:((outcome, string) result -> unit) ->
  unit ->
  unit
(** Poll for quiescence; on success kill the old instance, start the new
    one fresh (status "normal", no state transfer) and retarget its
    routes. Gives up after [give_up_after] virtual time (reporting
    [completed = false] via [Ok]). *)
