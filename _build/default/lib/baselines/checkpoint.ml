module Machine = Dr_interp.Machine

type stats = {
  checkpoints_taken : int;
  instructions_run : int;
  snapshot_bytes_total : int;
  snapshot_cost : float;
}

type t = {
  m : Machine.t;
  interval : int;
  cost_per_byte : float;
  mutable last_checkpoint : (Machine.t * int) option;
      (* snapshot and the instruction count at which it was taken *)
  mutable taken : int;
  mutable bytes_total : int;
  mutable next_due : int;
}

let create ~interval ?(cost_per_byte = 0.001) ~io program =
  if interval <= 0 then invalid_arg "Checkpoint.create: interval must be positive";
  { m = Machine.create ~io program;
    interval;
    cost_per_byte;
    last_checkpoint = None;
    taken = 0;
    bytes_total = 0;
    next_due = interval }

let machine t = t.m

let take_checkpoint t =
  let snapshot = Machine.clone t.m ~io:(Dr_interp.Io_intf.null ()) in
  t.last_checkpoint <- Some (snapshot, Machine.instr_count t.m);
  t.taken <- t.taken + 1;
  t.bytes_total <- t.bytes_total + Machine.state_size t.m;
  t.next_due <- Machine.instr_count t.m + t.interval

let run t ~max_steps =
  let steps = ref 0 in
  while Machine.status t.m = Machine.Ready && !steps < max_steps do
    Machine.step t.m;
    incr steps;
    if Machine.instr_count t.m >= t.next_due then take_checkpoint t
  done

let stats t =
  { checkpoints_taken = t.taken;
    instructions_run = Machine.instr_count t.m;
    snapshot_bytes_total = t.bytes_total;
    snapshot_cost = float_of_int t.bytes_total *. t.cost_per_byte }

let rollback t ~io =
  match t.last_checkpoint with
  | None -> None
  | Some (snapshot, at_count) ->
    let restored = Machine.clone snapshot ~io in
    let lost_work = Machine.instr_count t.m - at_count in
    Some (restored, lost_work)
