module Bus = Dr_bus.Bus

let move bus ~instance ~new_instance ~new_host =
  match Bus.instance_host bus ~instance with
  | None -> Error (Printf.sprintf "no such instance %s" instance)
  | Some old_host_name -> (
    match Bus.find_host bus old_host_name, Bus.find_host bus new_host with
    | Some old_host, Some dst_host ->
      if not (Dr_state.Arch.equal old_host.arch dst_host.arch) then
        Error
          (Printf.sprintf
             "machine-specific snapshot cannot move %s from %a to %a: raw \
              state is meaningless on a different architecture (this is what \
              the abstract state format fixes)"
             instance
             (fun () a -> Fmt.str "%a" Dr_state.Arch.pp a)
             old_host.arch
             (fun () a -> Fmt.str "%a" Dr_state.Arch.pp a)
             dst_host.arch)
      else begin
        match Bus.spawn_snapshot bus ~of_instance:instance
                ~instance:new_instance ~host:new_host
        with
        | Error _ as e -> e
        | Ok () ->
          (* move pending messages and retarget every route *)
          let ifaces =
            List.sort_uniq String.compare
              (List.filter_map
                 (fun ((_, (dst : Bus.endpoint)) : Bus.endpoint * Bus.endpoint) ->
                   if String.equal (fst dst) instance then Some (snd dst)
                   else None)
                 (Bus.all_routes bus))
          in
          List.iter
            (fun iface ->
              List.iter
                (fun v -> Bus.inject bus ~dst:(new_instance, iface) v)
                (Bus.take_queue bus (instance, iface)))
            ifaces;
          List.iter
            (fun ((src : Bus.endpoint), (dst : Bus.endpoint)) ->
              if String.equal (fst src) instance then begin
                Bus.del_route bus ~src ~dst;
                Bus.add_route bus ~src:(new_instance, snd src) ~dst
              end
              else if String.equal (fst dst) instance then begin
                Bus.del_route bus ~src ~dst;
                Bus.add_route bus ~src ~dst:(new_instance, snd dst)
              end)
            (Bus.all_routes bus);
          Bus.kill bus ~instance;
          Ok ()
      end
    | None, _ | _, None -> Error "unknown host")
