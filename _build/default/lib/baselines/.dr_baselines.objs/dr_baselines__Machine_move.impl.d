lib/baselines/machine_move.ml: Dr_bus Dr_state Fmt List Printf String
