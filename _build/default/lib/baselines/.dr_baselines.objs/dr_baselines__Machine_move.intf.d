lib/baselines/machine_move.mli: Dr_bus
