lib/baselines/recompile.mli: Dr_lang Dr_state Dr_transform
