lib/baselines/recompile.ml: Array Dr_analysis Dr_lang Dr_state Dr_transform Fmt List Printf Result String
