lib/baselines/checkpoint.mli: Dr_interp Dr_lang
