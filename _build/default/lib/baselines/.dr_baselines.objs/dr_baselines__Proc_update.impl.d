lib/baselines/proc_update.ml: Dr_interp Dr_lang Hashtbl List Option String
