lib/baselines/quiescence.ml: Dr_bus Dr_interp Dr_mil Dr_sim List Option Printf String
