lib/baselines/proc_update.mli: Dr_interp Dr_lang
