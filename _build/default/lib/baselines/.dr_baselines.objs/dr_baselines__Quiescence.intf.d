lib/baselines/quiescence.mli: Dr_bus
