lib/baselines/checkpoint.ml: Dr_interp
