module Machine = Dr_interp.Machine
module Ast = Dr_lang.Ast

type progress = {
  replaced : string list;
  outstanding : string list;
  steps_run : int;
  completed : bool;
}

type t = {
  m : Machine.t;
  new_code : (string, Dr_interp.Ir.proc_code) Hashtbl.t;
  changed : string list;
  (* changed callees of each changed procedure (the bottom-up order
     constraint applies between changed procedures only) *)
  changed_callees : (string * string list) list;
  mutable replaced_rev : string list;
  mutable steps : int;
}

let direct_callees (program : Ast.program) name =
  match Ast.find_proc program name with
  | None -> []
  | Some proc -> List.sort_uniq String.compare (Ast.calls_in_block proc.body)

let create ~machine ~old_program ~(new_program : Ast.program) =
  let changed =
    List.filter_map
      (fun (new_proc : Ast.proc) ->
        match Ast.find_proc old_program new_proc.proc_name with
        | Some old_proc when Ast.equal_proc old_proc new_proc -> None
        | Some _ | None -> Some new_proc.proc_name)
      new_program.procs
  in
  let changed_callees =
    List.map
      (fun name ->
        ( name,
          List.filter
            (fun callee -> List.mem callee changed)
            (direct_callees new_program name) ))
      changed
  in
  { m = machine;
    new_code = Dr_interp.Lower.lower_program new_program;
    changed;
    changed_callees;
    replaced_rev = [];
    steps = 0 }

let changed_procs t = t.changed

let outstanding t =
  List.filter (fun name -> not (List.mem name t.replaced_rev)) t.changed

let replaceable t name =
  (not (List.mem name t.replaced_rev))
  && (not (List.mem name (Machine.stack_procs t.m)))
  && List.for_all
       (fun callee ->
         String.equal callee name (* self-recursion: no ordering constraint *)
         || List.mem callee t.replaced_rev)
       (Option.value ~default:[] (List.assoc_opt name t.changed_callees))

let attempt_replacements t =
  (* Fixpoint: replacing one procedure can unblock its callers. *)
  let continue = ref true in
  while !continue do
    continue := false;
    List.iter
      (fun name ->
        if replaceable t name then begin
          (match Hashtbl.find_opt t.new_code name with
          | Some code -> Machine.replace_proc_code t.m code
          | None -> ());
          t.replaced_rev <- name :: t.replaced_rev;
          continue := true
        end)
      t.changed
  done

let step t =
  if Machine.status t.m = Machine.Ready then begin
    Machine.step t.m;
    t.steps <- t.steps + 1
  end;
  attempt_replacements t

let progress t =
  { replaced = List.rev t.replaced_rev;
    outstanding = outstanding t;
    steps_run = t.steps;
    completed = outstanding t = [] }

let run t ~max_steps =
  attempt_replacements t;
  let budget = ref max_steps in
  while
    outstanding t <> [] && Machine.status t.m = Machine.Ready && !budget > 0
  do
    step t;
    decr budget
  done;
  progress t
