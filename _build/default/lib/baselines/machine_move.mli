(** Migration by machine-specific snapshot — the strawman §1.2 argues
    against.

    The "obvious approach" to moving a process is copying its entire
    runtime state bit-for-bit. That works only between identical
    machines: register layouts, word sizes and byte orders differ, and a
    raw snapshot is meaningless elsewhere. This module implements the
    strawman over {!Dr_interp.Machine.clone}: it succeeds when source
    and destination hosts share an architecture and {b refuses}
    otherwise — the restriction the paper's abstract state format
    removes.

    Unlike a real reconfiguration, no module participation happens: the
    machine is snapshotted wherever it is, mid-statement state and all
    (which is also why no architecture translation is possible). *)

val move :
  Dr_bus.Bus.t ->
  instance:string ->
  new_instance:string ->
  new_host:string ->
  (unit, string) result
(** Snapshot the instance's machine, kill it, and resurrect the snapshot
    under [new_instance] on [new_host]. Fails with an explanatory error
    when the architectures differ. Routes are retargeted and pending
    queues move, as in a scripted replacement. *)
