module Ast = Dr_lang.Ast
module I = Dr_transform.Instrument
module Rg = Dr_analysis.Reconfig_graph
module Image = Dr_state.Image
module Value = Dr_state.Value

let ( let* ) = Result.bind

let block_var id = Printf.sprintf "mig_block_%d" id

let step_var proc_name = Printf.sprintf "mig_step_%s" proc_name

(* A captured value as a literal expression of the specialized program.
   Heap references point at the generated block globals. *)
let literal_of_value ~heap_ids (v : Value.t) : (Ast.expr, string) result =
  match v with
  | Vint i -> Ok (Ast.Int i)
  | Vfloat f -> Ok (Ast.Float f)
  | Vbool b -> Ok (Ast.Bool b)
  | Vstr s -> Ok (Ast.Str s)
  | Vnull -> Ok Ast.Null
  | Varr id ->
    if List.mem id heap_ids then Ok (Ast.Var (block_var id)) else Ok Ast.Null
  | Vptr (id, off) ->
    if List.mem id heap_ids then Ok (Ast.Addr (block_var id, Int off))
    else Ok Ast.Null

let alloc_builtin (ty : Ast.ty) =
  match ty with
  | Tint -> Ok "alloc_int"
  | Tfloat -> Ok "alloc_float"
  | Tbool -> Ok "alloc_bool"
  | Tstr -> Ok "alloc_str"
  | Tarr _ | Tptr _ ->
    Error "migration program: heap blocks of non-scalar elements unsupported"

(* mig_setup: allocate every captured heap block, then fill the cells
   (in a second pass, so inter-block references resolve). *)
let setup_proc ~heap_ids (heap : (int * Image.heap_block) list) =
  let* allocs =
    List.fold_left
      (fun acc (id, (block : Image.heap_block)) ->
        let* acc = acc in
        let* alloc = alloc_builtin block.elem_ty in
        Ok
          (Ast.stmt
             (Ast.Assign
                ( Lvar (block_var id),
                  Builtin (alloc, [ Int (Array.length block.cells) ]) ))
          :: acc))
      (Ok []) heap
  in
  let* fills =
    List.fold_left
      (fun acc (id, (block : Image.heap_block)) ->
        let* acc = acc in
        let cells = Array.to_list block.cells in
        let* stmts =
          List.fold_left
            (fun acc (j, cell) ->
              let* acc = acc in
              (* skip cells still holding the zero value: the allocator
                 already initialised them *)
              if Value.equal cell (Value.default_of_ty block.elem_ty) then Ok acc
              else
                let* lit = literal_of_value ~heap_ids cell in
                Ok (Ast.stmt (Ast.Assign (Lindex (block_var id, Int j), lit)) :: acc))
            (Ok [])
            (List.mapi (fun j cell -> (j, cell)) cells)
        in
        Ok (List.rev stmts @ acc))
      (Ok []) heap
  in
  Ok
    { Ast.proc_name = "mig_setup";
      params = [];
      ret = None;
      body = List.rev allocs @ fills;
      proc_line = 0 }

(* Per procedure, the records its successive restore invocations
   consume: restoration replays the image from the last record
   backwards. *)
let records_for graph (image : Image.t) proc_name =
  let src_of location =
    List.find_map
      (fun edge ->
        if Rg.edge_index edge = location then Some (Rg.edge_src edge) else None)
      graph.Rg.edges
  in
  (* restoration pops the image from its last record backwards; tag each
     with the procedure whose restore block will consume it *)
  let rec owners acc = function
    | [] -> Ok (List.rev acc)
    | (r : Image.record) :: rest -> (
      match src_of r.location with
      | Some src -> owners ((src, r) :: acc) rest
      | None ->
        Error
          (Printf.sprintf "migration program: unknown resume location %d"
             r.location))
  in
  let* tagged = owners [] (List.rev image.records) in
  Ok (List.filter_map (fun (src, r) -> if String.equal src proc_name then Some r else None) tagged)

(* Replace one mh_restore statement with counter-dispatched literal
   assignments. [targets] are the lvalues of the original statement
   (location first). *)
let specialise_restore ~heap_ids ~proc_name ~records targets =
  let* location_target, var_targets =
    match targets with
    | Ast.Alv loc :: rest ->
      let* vars =
        List.fold_left
          (fun acc arg ->
            let* acc = acc in
            match arg with
            | Ast.Alv lv -> Ok (lv :: acc)
            | Ast.Aexpr _ -> Error "migration program: malformed mh_restore")
          (Ok []) rest
      in
      Ok (loc, List.rev vars)
    | _ -> Error "migration program: malformed mh_restore"
  in
  let step = step_var proc_name in
  let* branches =
    List.fold_left
      (fun acc (i, (record : Image.record)) ->
        let* acc = acc in
        if List.length record.values <> List.length var_targets then
          Error
            (Printf.sprintf
               "migration program: record for %s has %d values, %d variables"
               proc_name
               (List.length record.values)
               (List.length var_targets))
        else
          let* assigns =
            List.fold_left
              (fun acc (lv, v) ->
                let* acc = acc in
                let* lit = literal_of_value ~heap_ids v in
                Ok (Ast.stmt (Ast.Assign (lv, lit)) :: acc))
              (Ok [])
              (List.combine var_targets record.values)
          in
          let body =
            Ast.stmt (Ast.Assign (location_target, Int record.location))
            :: List.rev assigns
          in
          Ok
            (Ast.stmt
               (Ast.If (Binop (Eq, Var step, Int (i + 1)), body, []))
            :: acc))
      (Ok [])
      (List.mapi (fun i r -> (i, r)) records)
  in
  Ok
    (Ast.stmt (Ast.Assign (Lvar step, Binop (Add, Var step, Int 1)))
    :: List.rev branches)

(* Rewrite one instrumented procedure: inside its restore block, drop
   mh_decode and replace mh_restore; in main, force mh_restoring and
   call mig_setup first. *)
let specialise_proc ~heap_ids ~graph ~image (proc : Ast.proc) =
  let is_main = String.equal proc.proc_name "main" in
  let* records = records_for graph image proc.proc_name in
  let rewrite_restore_body body =
    List.fold_left
      (fun acc (s : Ast.stmt) ->
        let* acc = acc in
        match s.kind with
        | Ast.BuiltinS ("mh_decode", _) -> Ok acc  (* no buffer needed *)
        | Ast.BuiltinS ("mh_restore", targets) ->
          let* replacement =
            specialise_restore ~heap_ids ~proc_name:proc.proc_name ~records
              targets
          in
          let replacement =
            if is_main then
              Ast.stmt (Ast.CallS ("mig_setup", [])) :: replacement
            else replacement
          in
          Ok (List.rev_append replacement acc)
        | _ -> Ok (s :: acc))
      (Ok []) body
    |> Result.map List.rev
  in
  let* body =
    List.fold_left
      (fun acc (s : Ast.stmt) ->
        let* acc = acc in
        match s.kind with
        (* main's clone-status check becomes an unconditional restore *)
        | Ast.If (Binop (Eq, Builtin ("mh_getstatus", []), Str "clone"), _, _)
          when is_main ->
          Ok ({ s with kind = Ast.Assign (Lvar "mh_restoring", Bool true) } :: acc)
        | Ast.If ((Var "mh_restoring" as cond), restore_body, []) ->
          let* restore_body = rewrite_restore_body restore_body in
          Ok ({ s with kind = Ast.If (cond, restore_body, []) } :: acc)
        | _ -> Ok (s :: acc))
      (Ok []) proc.body
    |> Result.map List.rev
  in
  Ok { proc with body }

let check_mig_names (program : Ast.program) =
  let clash = ref None in
  let note name =
    if
      !clash = None
      && String.length name >= 4
      && String.equal (String.sub name 0 4) "mig_"
    then clash := Some name
  in
  List.iter (fun (g : Ast.global) -> note g.gname) program.globals;
  List.iter (fun (p : Ast.proc) -> note p.proc_name) program.procs;
  match !clash with
  | None -> Ok ()
  | Some name ->
    Error
      (Printf.sprintf
         "migration program: name %s collides with the mig_ namespace" name)

let synthesize ~(prepared : I.prepared) ~(image : Image.t) =
  let program = prepared.prepared_program in
  let* () = check_mig_names program in
  let graph = prepared.graph in
  let heap_ids = List.map fst image.heap in
  let* setup = setup_proc ~heap_ids image.heap in
  let* procs =
    List.fold_left
      (fun acc (p : Ast.proc) ->
        let* acc = acc in
        if Rg.is_relevant graph p.proc_name then
          let* specialised = specialise_proc ~heap_ids ~graph ~image p in
          Ok (specialised :: acc)
        else Ok (p :: acc))
      (Ok []) program.procs
    |> Result.map List.rev
  in
  let block_globals =
    List.map
      (fun (id, (block : Image.heap_block)) ->
        { Ast.gname = block_var id;
          gty = Ast.Tarr block.elem_ty;
          ginit = None;
          gline = 0 })
      image.heap
  in
  let step_globals =
    List.map
      (fun proc_name ->
        { Ast.gname = step_var proc_name;
          gty = Ast.Tint;
          ginit = Some (Ast.Int 0);
          gline = 0 })
      graph.relevant
  in
  let specialised =
    { program with
      globals = program.globals @ block_globals @ step_globals;
      procs = procs @ [ setup ] }
  in
  (* the migration program must itself be an ordinary, well-typed module *)
  match Dr_lang.Typecheck.check specialised with
  | Ok () -> Ok specialised
  | Error errors ->
    Error
      (Fmt.str "migration program does not typecheck: %a"
         (Fmt.list ~sep:(Fmt.any "; ") Dr_lang.Typecheck.pp_error)
         errors)
