module Bus = Dr_bus.Bus
module Machine = Dr_interp.Machine

type outcome = { waited : float; attempts : int; completed : bool }

let is_quiescent bus ~instance ~ifaces =
  match Bus.process_status bus ~instance with
  | Some (Machine.Sleeping _) | Some (Machine.Blocked_read _) ->
    List.for_all
      (fun iface -> Bus.pending_messages bus (instance, iface) = 0)
      ifaces
  | Some Machine.Ready | Some Machine.Halted | Some (Machine.Crashed _)
  | Some Machine.Blocked_decode | None ->
    false

let retarget_routes bus ~instance ~new_instance =
  List.iter
    (fun ((src : Bus.endpoint), (dst : Bus.endpoint)) ->
      if String.equal (fst src) instance then begin
        Bus.del_route bus ~src ~dst;
        Bus.add_route bus ~src:(new_instance, snd src) ~dst
      end
      else if String.equal (fst dst) instance then begin
        Bus.del_route bus ~src ~dst;
        Bus.add_route bus ~src ~dst:(new_instance, snd dst)
      end)
    (Bus.all_routes bus)

let update_when_quiescent bus ~instance ~new_instance ?new_module
    ?(poll_interval = 1.0) ?(give_up_after = 10_000.0) ~on_done () =
  let started = Bus.now bus in
  let ifaces =
    match Bus.instance_spec bus ~instance with
    | Some spec -> List.map (fun i -> i.Dr_mil.Spec.if_name) spec.ifaces
    | None ->
      List.sort_uniq String.compare
        (List.filter_map
           (fun ((_, (dst : Bus.endpoint)) : Bus.endpoint * Bus.endpoint) ->
             if String.equal (fst dst) instance then Some (snd dst) else None)
           (Bus.all_routes bus))
  in
  let module_name =
    match new_module, Bus.instance_module bus ~instance with
    | Some m, _ -> Some m
    | None, m -> m
  in
  let attempts = ref 0 in
  let rec poll () =
    incr attempts;
    let waited = Bus.now bus -. started in
    if is_quiescent bus ~instance ~ifaces then begin
      let spec = Bus.instance_spec bus ~instance in
      let host = Option.value ~default:"?" (Bus.instance_host bus ~instance) in
      Bus.kill bus ~instance;
      match module_name with
      | None -> on_done (Error (Printf.sprintf "no such instance %s" instance))
      | Some module_name -> (
        match Bus.spawn bus ~instance:new_instance ~module_name ~host ?spec () with
        | Error e -> on_done (Error e)
        | Ok () ->
          retarget_routes bus ~instance ~new_instance;
          on_done (Ok { waited; attempts = !attempts; completed = true }))
    end
    else if waited >= give_up_after then
      on_done (Ok { waited; attempts = !attempts; completed = false })
    else
      Dr_sim.Engine.schedule (Bus.engine bus) ~delay:poll_interval poll
  in
  poll ()
