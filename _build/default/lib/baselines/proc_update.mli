(** Procedure-level update baseline (Frieder & Segal [4]; paper §4).

    "The program is updated by replacing each procedure when it is not
    executing. To maintain consistency ... they perform the update from
    the bottom up, by allowing a procedure to be replaced only after all
    the procedures it invokes have been replaced. ... when the main
    procedure has changed, the update cannot complete until the program
    terminates."

    The updater interleaves with a running machine: between instructions
    it replaces any changed procedure that (a) is not on the activation
    record stack and (b) whose changed callees have all been replaced
    already. The benchmark compares completion against the paper's
    statement-level approach for leaf-, mid- and main-level changes. *)

type progress = {
  replaced : string list;     (** procedures swapped so far, in order *)
  outstanding : string list;  (** changed procedures still waiting *)
  steps_run : int;            (** instructions executed while updating *)
  completed : bool;
}

type t

val create :
  machine:Dr_interp.Machine.t ->
  old_program:Dr_lang.Ast.program ->
  new_program:Dr_lang.Ast.program ->
  t
(** [new_program] must declare the same procedure names; the changed set
    is computed structurally. *)

val changed_procs : t -> string list

val step : t -> unit
(** One machine instruction, then attempt replacements. *)

val run : t -> max_steps:int -> progress
(** Step until the update completes, the machine stops, or the budget is
    exhausted. *)

val progress : t -> progress
