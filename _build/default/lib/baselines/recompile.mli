(** Heterogeneous process migration by recompilation (Theimer & Hayes
    [10]; paper §4).

    Where the paper's approach prepares a module for {e all} possible
    reconfigurations at compile time, [10] generates a
    machine-independent {e migration program} at migration time for the
    one specific captured state: "modified versions of the procedures in
    the activation record stack ... initialize local variables, call the
    next modified procedure in the call stack, and arrange to resume
    execution in the original procedure."

    [synthesize] reproduces that idea: given an instrumented module and
    a captured state image, it emits a {b self-contained} MiniProc
    program with every captured value baked in as a literal — heap
    blocks are rebuilt by a generated [mig_setup] procedure, each
    restore block's [mh_restore] is replaced by per-invocation literal
    assignments, and [mh_decode]/the clone-status check disappear. The
    result needs no restore buffer: started as an ordinary module, it
    rebuilds its stack and resumes at the reconfiguration point.

    The trade-off measured in the benchmarks: [10] pays
    synthesis + compilation at migration time and needs a fresh program
    per migration; the paper's approach pays instrumentation once at
    compile time and ships only the state image. *)

val synthesize :
  prepared:Dr_transform.Instrument.prepared ->
  image:Dr_state.Image.t ->
  (Dr_lang.Ast.program, string) result
(** Fails when the image does not match the module (unknown resume
    locations, wrong record shapes) or when a heap block has a
    non-scalar element type (MiniProc allocators are scalar-only). *)
