lib/transform/instrument.ml: Ast Dr_analysis Dr_lang Fmt List Option Printf Result String Typecheck
