lib/transform/instrument.mli: Dr_analysis Dr_lang
