(* Interpreter engine comparison: the resolved slot-indexed engine
   (Machine) against the original AST-walking engine (Ast_machine), on
   the D1 hot-loop (instrs/sec) and depth-64 capture/restore — plus the
   resolved engine with superinstruction fusion on ({!Machine.set_fusion}:
   compare+branch, load+store, push+call pairs dispatched in one step).
   Emits BENCH_interp.json next to bench_output.txt so the perf
   trajectory is tracked across PRs.

   Run with: dune exec bench/main.exe -- interp           (full sizes)
             dune exec bench/main.exe -- interp --quick   (CI smoke)

   Gates: quick mode exits non-zero if the resolved engine is slower
   than the AST engine, or the fused dispatch slower than plain
   resolved, on the hot loop; full mode additionally requires fused >=
   1.15x resolved there. All modes assert the three engines execute the
   exact same number of instructions (the differential-correctness spot
   check; the full property suites live in test/test_resolve.ml and
   test/test_fusion.ml). *)

module Machine = Dr_interp.Machine
module Ast_machine = Dr_interp.Ast_machine
module Synthetic = Dr_workloads.Synthetic
module I = Dr_transform.Instrument

let null_io = Dr_interp.Io_intf.null ()

let prepare_exn program points =
  match I.prepare program ~points with
  | Ok prepared -> prepared
  | Error e -> failwith e

(* ------------------------------------------------------- measurement *)

type sample = {
  s_name : string;
  s_engine : string;
  s_runs : int;
  s_instrs_per_run : int;
  s_secs : float;  (* total measured wall-clock over all runs *)
  s_rate : float;  (* instructions per second *)
}

(* [run ()] returns (instructions executed, seconds) for one timed
   window; repeat until [min_time] has accumulated. One warm-up run is
   discarded. *)
let measure ~name ~engine ~min_time run =
  ignore (run ());
  let runs = ref 0 in
  let instrs = ref 0 in
  let per_run = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < min_time do
    let n, dt = run () in
    incr runs;
    per_run := n;
    instrs := !instrs + n;
    elapsed := !elapsed +. dt
  done;
  { s_name = name;
    s_engine = engine;
    s_runs = !runs;
    s_instrs_per_run = !per_run;
    s_secs = !elapsed;
    s_rate = float_of_int !instrs /. !elapsed }

let timed f =
  let t0 = Unix.gettimeofday () in
  let n = f () in
  let t1 = Unix.gettimeofday () in
  (n, t1 -. t0)

(* ---------------------------------------------------------- hot loop *)

let hotloop_resolved program () =
  timed (fun () ->
      let m = Machine.create ~io:null_io program in
      Machine.run ~max_steps:100_000_000 m;
      (match Machine.status m with
      | Machine.Halted -> ()
      | s -> Fmt.failwith "resolved hotloop: %a" Machine.pp_status s);
      Machine.instr_count m)

let hotloop_fused program () =
  timed (fun () ->
      let m = Machine.create ~io:null_io program in
      Machine.set_fusion m true;
      Machine.run ~max_steps:100_000_000 m;
      (match Machine.status m with
      | Machine.Halted -> ()
      | s -> Fmt.failwith "fused hotloop: %a" Machine.pp_status s);
      Machine.instr_count m)

let hotloop_ast program () =
  timed (fun () ->
      let m = Ast_machine.create ~io:null_io program in
      Ast_machine.run ~max_steps:100_000_000 m;
      (match Ast_machine.status m with
      | Ast_machine.Halted -> ()
      | s -> Fmt.failwith "ast hotloop: %a" Ast_machine.pp_status s);
      Ast_machine.instr_count m)

(* --------------------------------------------- capture/restore depth *)

(* Drive a prepared deeprec to its reconfiguration loop, signal, and
   time the capture + encode (the timed window starts at the signal). *)
let capture_resolved prepared () =
  let divulged = ref [] in
  let io =
    { null_io with
      Dr_interp.Io_intf.io_encode = (fun image -> divulged := image :: !divulged)
    }
  in
  let m = Machine.create ~io prepared in
  Machine.run ~max_steps:10_000_000 m;
  Machine.deliver_signal m;
  Machine.set_ready m;
  let before = Machine.instr_count m in
  let result =
    timed (fun () ->
        Machine.run ~max_steps:10_000_000 m;
        Machine.instr_count m - before)
  in
  if !divulged = [] then failwith "capture_resolved: no image divulged";
  result

let capture_fused prepared () =
  let divulged = ref [] in
  let io =
    { null_io with
      Dr_interp.Io_intf.io_encode = (fun image -> divulged := image :: !divulged)
    }
  in
  let m = Machine.create ~io prepared in
  Machine.set_fusion m true;
  Machine.run ~max_steps:10_000_000 m;
  Machine.deliver_signal m;
  Machine.set_ready m;
  let before = Machine.instr_count m in
  let result =
    timed (fun () ->
        Machine.run ~max_steps:10_000_000 m;
        Machine.instr_count m - before)
  in
  if !divulged = [] then failwith "capture_fused: no image divulged";
  result

let capture_ast prepared () =
  let divulged = ref [] in
  let io =
    { null_io with
      Dr_interp.Io_intf.io_encode = (fun image -> divulged := image :: !divulged)
    }
  in
  let m = Ast_machine.create ~io prepared in
  Ast_machine.run ~max_steps:10_000_000 m;
  Ast_machine.deliver_signal m;
  Ast_machine.set_ready m;
  let before = Ast_machine.instr_count m in
  let result =
    timed (fun () ->
        Ast_machine.run ~max_steps:10_000_000 m;
        Ast_machine.instr_count m - before)
  in
  if !divulged = [] then failwith "capture_ast: no image divulged";
  result

(* A state image captured once, fed to fresh clones for the restore
   measurement (images are engine-independent). *)
let image_of prepared =
  let divulged = ref [] in
  let io =
    { null_io with
      Dr_interp.Io_intf.io_encode = (fun image -> divulged := image :: !divulged)
    }
  in
  let m = Machine.create ~io prepared in
  Machine.run ~max_steps:10_000_000 m;
  Machine.deliver_signal m;
  Machine.set_ready m;
  Machine.run ~max_steps:10_000_000 m;
  match !divulged with
  | image :: _ -> image
  | [] -> failwith "image_of: no image divulged"

let restore_resolved prepared image () =
  let clone = Machine.create ~status_attr:"clone" ~io:null_io prepared in
  Machine.feed_image clone image;
  timed (fun () ->
      Machine.run ~max_steps:10_000_000 clone;
      Machine.instr_count clone)

let restore_fused prepared image () =
  let clone = Machine.create ~status_attr:"clone" ~io:null_io prepared in
  Machine.set_fusion clone true;
  Machine.feed_image clone image;
  timed (fun () ->
      Machine.run ~max_steps:10_000_000 clone;
      Machine.instr_count clone)

let restore_ast prepared image () =
  let clone = Ast_machine.create ~status_attr:"clone" ~io:null_io prepared in
  Ast_machine.feed_image clone image;
  timed (fun () ->
      Ast_machine.run ~max_steps:10_000_000 clone;
      Ast_machine.instr_count clone)

(* -------------------------------------------------------------- main *)

let rate_str r =
  if r >= 1e6 then Printf.sprintf "%.2fM" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%.0fk" (r /. 1e3)
  else Printf.sprintf "%.0f" r

let all ?(quick = false) () =
  print_newline ();
  print_endline "==============================================================";
  print_endline "Interpreter engines: AST-walking (reference) vs resolved IR";
  print_endline "==============================================================";
  let rounds, inner = if quick then (40, 40) else (200, 200) in
  let min_time = if quick then 0.1 else 1.0 in
  let hotloop = Synthetic.hotloop ~rounds ~inner in
  let deeprec =
    (prepare_exn (Synthetic.deeprec ~depth:64) Synthetic.deeprec_points)
      .I
      .prepared_program
  in
  let image = image_of deeprec in
  let triples =
    [ (Printf.sprintf "d1_hotloop_%dx%d" rounds inner,
       measure ~name:"hotloop" ~engine:"ast" ~min_time (hotloop_ast hotloop),
       measure ~name:"hotloop" ~engine:"resolved" ~min_time
         (hotloop_resolved hotloop),
       measure ~name:"hotloop" ~engine:"fused" ~min_time
         (hotloop_fused hotloop));
      ("capture_depth64",
       measure ~name:"capture" ~engine:"ast" ~min_time (capture_ast deeprec),
       measure ~name:"capture" ~engine:"resolved" ~min_time
         (capture_resolved deeprec),
       measure ~name:"capture" ~engine:"fused" ~min_time
         (capture_fused deeprec));
      ("restore_depth64",
       measure ~name:"restore" ~engine:"ast" ~min_time
         (restore_ast deeprec image),
       measure ~name:"restore" ~engine:"resolved" ~min_time
         (restore_resolved deeprec image),
       measure ~name:"restore" ~engine:"fused" ~min_time
         (restore_fused deeprec image)) ]
  in
  (* The three engines must execute the exact same instruction stream
     (fusion counts each sub-instruction of a pair). *)
  List.iter
    (fun (name, ast, resolved, fused) ->
      if
        ast.s_instrs_per_run <> resolved.s_instrs_per_run
        || ast.s_instrs_per_run <> fused.s_instrs_per_run
      then
        failwith
          (Printf.sprintf
             "%s: engines disagree on instruction count (%d vs %d vs %d)" name
             ast.s_instrs_per_run resolved.s_instrs_per_run
             fused.s_instrs_per_run))
    triples;
  Printf.printf "%-24s %12s %12s %12s %12s %8s %8s\n" "workload" "instrs/run"
    "ast i/s" "resolved i/s" "fused i/s" "res/ast" "fus/res";
  Printf.printf "%s\n" (String.make 94 '-');
  List.iter
    (fun (name, ast, resolved, fused) ->
      Printf.printf "%-24s %12d %12s %12s %12s %7.2fx %7.2fx\n" name
        ast.s_instrs_per_run (rate_str ast.s_rate) (rate_str resolved.s_rate)
        (rate_str fused.s_rate)
        (resolved.s_rate /. ast.s_rate)
        (fused.s_rate /. resolved.s_rate))
    triples;
  let sample_json s =
    Json_out.obj
      [ ("name", Json_out.str s.s_name);
        ("engine", Json_out.str s.s_engine);
        ("runs", Json_out.int s.s_runs);
        ("instrs_per_run", Json_out.int s.s_instrs_per_run);
        ("seconds", Json_out.float s.s_secs);
        ("instrs_per_sec", Json_out.float s.s_rate) ]
  in
  let json =
    Json_out.obj
      [ ("suite", Json_out.str "interp");
        ("quick", Json_out.bool quick);
        ( "samples",
          Json_out.arr
            (List.concat_map
               (fun (_, ast, resolved, fused) ->
                 [ sample_json ast; sample_json resolved; sample_json fused ])
               triples) );
        ( "speedup",
          Json_out.obj
            (List.map
               (fun (name, ast, resolved, _) ->
                 (name, Json_out.float (resolved.s_rate /. ast.s_rate)))
               triples) );
        ( "fused_speedup",
          Json_out.obj
            (List.map
               (fun (name, _, resolved, fused) ->
                 (name, Json_out.float (fused.s_rate /. resolved.s_rate)))
               triples) ) ]
  in
  Json_out.write
    (if quick then "BENCH_interp_quick.json" else "BENCH_interp.json")
    json;
  (* CI gates on the hot loop (the steady-state throughput metric; the
     capture/restore windows are too short to gate on reliably): the
     resolved engine must beat the AST engine and fusion must not lose
     to plain resolved dispatch; the full run additionally requires the
     1.15x fusion win the superinstructions exist for. *)
  List.iter
    (fun (name, ast, resolved, fused) ->
      if String.length name >= 2 && String.sub name 0 2 = "d1" then begin
        if quick && resolved.s_rate < ast.s_rate then begin
          Printf.eprintf
            "FAIL: resolved engine slower than AST engine on %s (%.0f < %.0f instrs/s)\n"
            name resolved.s_rate ast.s_rate;
          exit 1
        end;
        if quick && fused.s_rate < resolved.s_rate then begin
          Printf.eprintf
            "FAIL: fused dispatch slower than resolved on %s (%.0f < %.0f instrs/s)\n"
            name fused.s_rate resolved.s_rate;
          exit 1
        end;
        if (not quick) && fused.s_rate < 1.15 *. resolved.s_rate then begin
          Printf.eprintf
            "FAIL: fused dispatch below 1.15x resolved on %s (%.2fx)\n" name
            (fused.s_rate /. resolved.s_rate);
          exit 1
        end
      end)
    triples
