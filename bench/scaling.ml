(* Bus scaling suite: an N-member token ring driven for a fixed event
   budget, measuring wall-clock deliveries/sec plus deploy time — each
   size both on the classic single-domain bus and on a sharded bus
   (broker domains with batched inter-domain delivery).

   Run with: dune exec bench/main.exe -- scaling            (full sweep)
             dune exec bench/main.exe -- scaling --quick    (CI smoke)

   The full sweep writes every row (N = 10 .. 100k, single and multi
   domain) to BENCH_scaling.json and gates on (a) the multi-domain
   speedup at N = 1000 and (b) the 100k deploy completing in bounded
   time. The quick sweep writes BENCH_scaling_quick.json — a separate
   artifact, so a CI run can never overwrite the full sweep's rows —
   and gates multi-domain >= single-domain throughput. *)

module Bus = Dr_bus.Bus
module Ring = Dr_workloads.Ring

type row = {
  sc_n : int;
  sc_shards : int;
  sc_deploy_ms : float;
  sc_events : int;
  sc_deliveries : int;
  sc_rate : float;  (* deliveries per wall-clock second *)
}

let run_one ~n ~shards ~events =
  let system = Ring.load_large ~n in
  let t0 = Unix.gettimeofday () in
  let bus = Ring.start_large system ~shards ~n ~tokens:(max 1 (n / 10)) in
  let t1 = Unix.gettimeofday () in
  Bus.run ~max_events:events bus;
  let t2 = Unix.gettimeofday () in
  let deliveries =
    List.fold_left
      (fun acc m -> acc + max 0 (Ring.passes bus ~instance:m))
      0 (Ring.members ~n)
  in
  { sc_n = n;
    sc_shards = shards;
    sc_deploy_ms = (t1 -. t0) *. 1e3;
    sc_events = events;
    sc_deliveries = deliveries;
    sc_rate = float_of_int deliveries /. (t2 -. t1) }

(* More domains pay off once the fleet is large enough to amortize the
   per-batch drain over many same-instant deliveries. *)
let multi_shards n = if n >= 10_000 then 8 else 4

(* The event budget must grow with N so large rings still complete whole
   passes: a sharded pass costs ~2 events per member. *)
let events_for ?(base = 200_000) n = max base (4 * n)

let find_row rows ~n ~multi =
  List.find_opt
    (fun r -> r.sc_n = n && (if multi then r.sc_shards > 1 else r.sc_shards = 1))
    rows

let speedup rows ~n =
  match (find_row rows ~n ~multi:false, find_row rows ~n ~multi:true) with
  | Some s, Some m when s.sc_rate > 0.0 -> Some (s, m, m.sc_rate /. s.sc_rate)
  | _ -> None

let header () =
  print_newline ();
  print_endline "==============================================================";
  print_endline "Bus scaling: N-member ring, fixed event budget";
  print_endline "==============================================================";
  Printf.printf "%8s %7s %12s %10s %12s %16s\n" "N" "shards" "deploy(ms)"
    "events" "deliveries" "deliveries/sec";
  Printf.printf "%s\n" (String.make 70 '-')

let sweep ~sizes ~base_events =
  List.concat_map
    (fun n ->
      let events = events_for ~base:base_events n in
      List.map
        (fun shards ->
          let r = run_one ~n ~shards ~events in
          Printf.printf "%8d %7d %12.1f %10d %12d %16.0f\n%!" r.sc_n
            r.sc_shards r.sc_deploy_ms r.sc_events r.sc_deliveries r.sc_rate;
          r)
        [ 1; multi_shards n ])
    sizes

let row_json r =
  Json_out.obj
    [ ("n", Json_out.int r.sc_n);
      ("shards", Json_out.int r.sc_shards);
      ("deploy_ms", Json_out.float r.sc_deploy_ms);
      ("events", Json_out.int r.sc_events);
      ("deliveries", Json_out.int r.sc_deliveries);
      ("deliveries_per_sec", Json_out.float r.sc_rate) ]

let write_artifact ~path rows =
  Json_out.write path
    (Json_out.obj
       [ ("suite", Json_out.str "scaling");
         ("rows", Json_out.arr (List.map row_json rows)) ])

(* The full sweep's artifact must carry the complete row set — the old
   harness let a quick CI run overwrite it with two rows, silently
   losing the published N=1000 figures. *)
let assert_full_rows ~sizes rows =
  List.iter
    (fun n ->
      List.iter
        (fun multi ->
          if find_row rows ~n ~multi = None then
            failwith
              (Printf.sprintf
                 "scaling: full artifact is missing the N=%d %s-domain row" n
                 (if multi then "multi" else "single")))
        [ false; true ])
    sizes

let gate_speedup rows ~n ~minimum =
  match speedup rows ~n with
  | None ->
    prerr_endline
      (Printf.sprintf "scaling: GATE FAILED: no rate comparison at N=%d" n);
    exit 1
  | Some (s, m, ratio) ->
    Printf.printf
      "N=%d: single-domain %.0f del/s, %d-domain %.0f del/s (%.2fx, gate \
       >=%.1fx)\n%!"
      n s.sc_rate m.sc_shards m.sc_rate ratio minimum;
    if ratio < minimum then begin
      prerr_endline
        (Printf.sprintf
           "scaling: GATE FAILED: %.2fx < %.1fx multi-domain speedup at N=%d"
           ratio minimum n);
      exit 1
    end

let full ?(sizes = [ 10; 100; 1000; 10_000; 100_000 ]) () =
  header ();
  let rows = sweep ~sizes ~base_events:200_000 in
  (* deploy-time gate: the 100k-instance deploy must complete in bounded
     wall-clock time, not just eventually *)
  (match find_row rows ~n:100_000 ~multi:true with
  | Some r when List.mem 100_000 sizes ->
    Printf.printf "N=100000 multi-domain deploy: %.1f ms (gate <= 120000)\n%!"
      r.sc_deploy_ms;
    if r.sc_deploy_ms > 120_000.0 then begin
      prerr_endline "scaling: GATE FAILED: 100k deploy exceeded 120s";
      exit 1
    end
  | _ -> ());
  gate_speedup rows ~n:1000 ~minimum:2.0;
  assert_full_rows ~sizes rows;
  write_artifact ~path:"BENCH_scaling.json" rows

let quick ?(sizes = [ 10; 1000; 10_000 ]) () =
  header ();
  let rows = sweep ~sizes ~base_events:100_000 in
  (* CI gate: sharding must never cost throughput at the largest quick
     size; the 2x bar is enforced by the full sweep *)
  gate_speedup rows ~n:(List.fold_left max 0 sizes) ~minimum:1.0;
  write_artifact ~path:"BENCH_scaling_quick.json" rows

let all ?quick:(q = false) () = if q then quick () else full ()
