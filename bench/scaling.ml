(* Bus scaling suite: an N-member token ring driven for a fixed event
   budget, measuring wall-clock deliveries/sec plus deploy time. Run
   with: dune exec bench/main.exe -- scaling *)

module Bus = Dr_bus.Bus
module Ring = Dr_workloads.Ring

type row = {
  sc_n : int;
  sc_deploy_ms : float;
  sc_events : int;
  sc_deliveries : int;
  sc_rate : float;  (* deliveries per wall-clock second *)
}

let run_one ~n ~events =
  let system = Ring.load_large ~n in
  let t0 = Unix.gettimeofday () in
  let bus = Ring.start_large system ~n ~tokens:(max 1 (n / 10)) in
  let t1 = Unix.gettimeofday () in
  Bus.run ~max_events:events bus;
  let t2 = Unix.gettimeofday () in
  let deliveries =
    List.fold_left
      (fun acc m -> acc + max 0 (Ring.passes bus ~instance:m))
      0 (Ring.members ~n)
  in
  { sc_n = n;
    sc_deploy_ms = (t1 -. t0) *. 1e3;
    sc_events = events;
    sc_deliveries = deliveries;
    sc_rate = float_of_int deliveries /. (t2 -. t1) }

let all ?(sizes = [ 10; 100; 1000 ]) ?(events = 200_000) () =
  print_newline ();
  print_endline "==============================================================";
  print_endline "Bus scaling: N-member ring, fixed event budget";
  print_endline "==============================================================";
  Printf.printf "%8s %12s %10s %12s %16s\n" "N" "deploy(ms)" "events"
    "deliveries" "deliveries/sec";
  Printf.printf "%s\n" (String.make 62 '-');
  let rows =
    List.map
      (fun n ->
        let r = run_one ~n ~events in
        Printf.printf "%8d %12.1f %10d %12d %16.0f\n%!" r.sc_n r.sc_deploy_ms
          r.sc_events r.sc_deliveries r.sc_rate;
        r)
      sizes
  in
  let row_json r =
    Json_out.obj
      [ ("n", Json_out.int r.sc_n);
        ("deploy_ms", Json_out.float r.sc_deploy_ms);
        ("events", Json_out.int r.sc_events);
        ("deliveries", Json_out.int r.sc_deliveries);
        ("deliveries_per_sec", Json_out.float r.sc_rate) ]
  in
  Json_out.write "BENCH_scaling.json"
    (Json_out.obj
       [ ("suite", Json_out.str "scaling");
         ("events", Json_out.int events);
         ("rows", Json_out.arr (List.map row_json rows)) ])
