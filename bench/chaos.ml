(* Chaos suite: reconfiguration under injected faults.

   Part 1 (transactional) deploys the token ring, installs a seeded
   fault plan (uniform message loss, optionally a host crash in the
   middle of the replacement window), lets the ring run, then performs
   a transactional [replace] of member [c] with a deadline and one
   retry. A trial is {e consistent} when either the replacement
   completed (the clone is live and every route endpoint resolves to an
   instance) or it rolled back and the route set and instance roster
   equal the pre-script snapshot.

   Part 2 (reliable sweep) repeats the replacement with the reliable
   delivery layer enabled on every route, sweeping the loss rate from
   0 to 20% across six fault scenarios. Here the bar is higher:
   every trial must complete AND the tap's token history must be
   exactly-once — no token lost, none duplicated — despite the loss,
   duplication and jitter underneath.

   Both parts are summarised in BENCH_chaos.json.
   Run with: dune exec bench/main.exe -- chaos [--quick] *)

module Bus = Dr_bus.Bus
module Faults = Dr_bus.Faults
module Reliable = Dr_bus.Reliable
module Script = Dr_reconfig.Script
module Ring = Dr_workloads.Ring

type scenario = {
  sc_name : string;
  sc_loss : float;
  sc_host_crash : (string * float) option;
  sc_recover : float option;
}

type tally = {
  mutable ok : int;  (* replacement completed *)
  mutable rolled_back : int;  (* failed but restored the old config *)
  mutable inconsistent : int;  (* failed AND left the config damaged *)
  mutable latency_sum : float;  (* virtual time, completed trials only *)
}

let snapshot bus =
  let routes =
    List.sort compare
      (List.map
         (fun ((src, dst) : Bus.endpoint * Bus.endpoint) ->
           (fst src, snd src, fst dst, snd dst))
         (Bus.all_routes bus))
  in
  let roster = List.sort String.compare (Bus.instances bus) in
  (routes, roster)

let fully_routed bus =
  let live = Bus.instances bus in
  List.for_all
    (fun ((src, dst) : Bus.endpoint * Bus.endpoint) ->
      List.mem (fst src) live && List.mem (fst dst) live)
    (Bus.all_routes bus)

let run_trial scenario ~seed =
  let system = Ring.load () in
  let plan =
    Ring.chaos_plan ~loss:scenario.sc_loss ?host_crash:scenario.sc_host_crash
      ?host_recover:scenario.sc_recover ()
  in
  let bus = Ring.start_chaos ~seed ~plan system in
  Bus.run ~until:8.0 bus;
  let before = snapshot bus in
  let started = Bus.now bus in
  let outcome =
    Script.run_sync bus (fun ~on_done ->
        Script.replace bus ~instance:"c" ~new_instance:"c2" ~deadline:25.0
          ~retry:{ Script.attempts = 2; backoff = 5.0; alt_hosts = [ "hostA" ] }
          ~on_done ())
  in
  let latency = Bus.now bus -. started in
  match outcome with
  | Ok _ -> (`Ok latency, bus)
  | Error _ ->
    if snapshot bus = before then (`Rolled_back, bus)
    else (`Inconsistent, bus)

let run_scenario ?(trials = 40) scenario =
  let t = { ok = 0; rolled_back = 0; inconsistent = 0; latency_sum = 0.0 } in
  for seed = 1 to trials do
    let verdict, bus = run_trial scenario ~seed in
    (match verdict with
    | `Ok latency ->
      t.ok <- t.ok + 1;
      t.latency_sum <- t.latency_sum +. latency
    | `Rolled_back -> t.rolled_back <- t.rolled_back + 1
    | `Inconsistent -> t.inconsistent <- t.inconsistent + 1);
    (* a completed replacement must also leave the graph fully routed *)
    if not (fully_routed bus) then begin
      t.inconsistent <- t.inconsistent + 1;
      Printf.printf "  !! seed %d left a dangling route\n" seed
    end
  done;
  t

let scenarios =
  [ { sc_name = "fault-free"; sc_loss = 0.0; sc_host_crash = None;
      sc_recover = None };
    { sc_name = "loss 2%"; sc_loss = 0.02; sc_host_crash = None;
      sc_recover = None };
    { sc_name = "loss 5%"; sc_loss = 0.05; sc_host_crash = None;
      sc_recover = None };
    { sc_name = "loss 10%"; sc_loss = 0.10; sc_host_crash = None;
      sc_recover = None };
    { sc_name = "loss 5% + hostB crash"; sc_loss = 0.05;
      sc_host_crash = Some ("hostB", 8.5); sc_recover = None };
    { sc_name = "loss 5% + crash/recover"; sc_loss = 0.05;
      sc_host_crash = Some ("hostB", 8.5); sc_recover = Some 12.0 } ]

(* ---------------------------------------------- reliable-delivery sweep *)

type sweep_scenario = {
  sw_name : string;
  sw_dup : float;
  sw_jitter : float;
  sw_hot_route : bool;  (* extra loss on the b -> c route, 2x the rate *)
  sw_double : bool;  (* replace c -> c2, then b -> b2 *)
}

let sweep_scenarios =
  [ { sw_name = "uniform loss"; sw_dup = 0.0; sw_jitter = 0.0;
      sw_hot_route = false; sw_double = false };
    { sw_name = "loss + dup 10%"; sw_dup = 0.10; sw_jitter = 0.0;
      sw_hot_route = false; sw_double = false };
    { sw_name = "loss + jitter 0.5"; sw_dup = 0.0; sw_jitter = 0.5;
      sw_hot_route = false; sw_double = false };
    { sw_name = "loss + dup + jitter"; sw_dup = 0.10; sw_jitter = 0.5;
      sw_hot_route = false; sw_double = false };
    { sw_name = "hot route b>c 2x"; sw_dup = 0.0; sw_jitter = 0.0;
      sw_hot_route = true; sw_double = false };
    { sw_name = "double replace"; sw_dup = 0.05; sw_jitter = 0.0;
      sw_hot_route = false; sw_double = true } ]

let sweep_losses = [ 0.0; 0.05; 0.10; 0.15; 0.20 ]

let sweep_plan scenario ~loss =
  let rules =
    (if scenario.sw_hot_route then
       [ Faults.rule ~src:"b" ~dst:"c" ~loss:(Float.min 1.0 (2.0 *. loss))
           ~dup:scenario.sw_dup () ]
     else [])
    @ [ Faults.rule ~loss ~dup:scenario.sw_dup () ]
  in
  Faults.plan ~rules ~jitter:scenario.sw_jitter ()

let sweep_retry = { Script.attempts = 3; backoff = 5.0; alt_hosts = [] }

let replace_sync bus ~instance ~new_instance =
  Script.run_sync bus ~deadline:150.0 (fun ~on_done ->
      Script.replace bus ~instance ~new_instance ~deadline:60.0
        ~retry:sweep_retry ~on_done ())

(* One sweep trial: ring + reliable layer + seeded faults, replace
   member(s) mid-run, then drain under a fault-free network so every
   retransmission lands, and check the tap saw each token exactly once. *)
let run_sweep_trial scenario ~loss ~seed =
  let system = Ring.load () in
  let bus = Ring.start system in
  let r = Reliable.attach bus in
  Reliable.enable_all r;
  Faults.install bus ~seed (sweep_plan scenario ~loss);
  Bus.run ~until:8.0 bus;
  let started = Bus.now bus in
  let outcome = replace_sync bus ~instance:"c" ~new_instance:"c2" in
  let outcome =
    if scenario.sw_double && Result.is_ok outcome then
      replace_sync bus ~instance:"b" ~new_instance:"b2"
    else outcome
  in
  let latency = Bus.now bus -. started in
  Faults.install bus ~seed Faults.no_faults;
  Bus.run ~until:(Bus.now bus +. 40.0) bus;
  let history = Ring.tap_history bus in
  let exactly_once =
    Ring.history_exactly_once history && List.length history > 0
  in
  (Result.is_ok outcome, exactly_once, latency, Reliable.total_retx r)

type sweep_row = {
  row_scenario : string;
  row_loss : float;
  row_trials : int;
  row_completed : int;
  row_exactly_once : int;
  row_latency_sum : float;
  row_retx : int;
}

let run_sweep_cell scenario ~loss ~seeds =
  let completed = ref 0 and exactly = ref 0 in
  let latency_sum = ref 0.0 and retx = ref 0 in
  List.iter
    (fun seed ->
      let ok, eo, latency, rtx = run_sweep_trial scenario ~loss ~seed in
      if ok then begin
        incr completed;
        latency_sum := !latency_sum +. latency
      end;
      if eo then incr exactly;
      retx := !retx + rtx)
    seeds;
  { row_scenario = scenario.sw_name;
    row_loss = loss;
    row_trials = List.length seeds;
    row_completed = !completed;
    row_exactly_once = !exactly;
    row_latency_sum = !latency_sum;
    row_retx = !retx }

(* ----------------------------------------------------------------- main *)

let json_of_tally ~trials scenario (t : tally) =
  Json_out.(
    obj
      [ ("scenario", str scenario.sc_name);
        ("loss", float scenario.sc_loss);
        ("trials", int trials);
        ("ok", int t.ok);
        ("rolled_back", int t.rolled_back);
        ("inconsistent", int t.inconsistent);
        ( "consistent_rate",
          float (float_of_int (t.ok + t.rolled_back) /. float_of_int trials) );
        ( "mean_latency",
          if t.ok = 0 then "null"
          else float (t.latency_sum /. float_of_int t.ok) ) ])

let json_of_sweep_row row =
  Json_out.(
    obj
      [ ("scenario", str row.row_scenario);
        ("loss", float row.row_loss);
        ("trials", int row.row_trials);
        ("completed", int row.row_completed);
        ("exactly_once", int row.row_exactly_once);
        ( "mean_latency",
          if row.row_completed = 0 then "null"
          else float (row.row_latency_sum /. float_of_int row.row_completed) );
        ("retx_total", int row.row_retx) ])

let all ?trials ?(quick = false) () =
  let trials = Option.value trials ~default:(if quick then 8 else 40) in
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  print_newline ();
  print_endline "==============================================================";
  print_endline "Chaos: transactional replace under injected faults";
  print_endline
    (Printf.sprintf
       "%d seeded trials per scenario; replace c -> c2, deadline 25, 1 retry"
       trials);
  print_endline "==============================================================";
  Printf.printf "%-24s %6s %9s %13s %11s %13s\n" "scenario" "ok" "rollback"
    "inconsistent" "consistent" "mean latency";
  Printf.printf "%s\n" (String.make 80 '-');
  let worst = ref 1.0 in
  let transactional_rows = ref [] in
  List.iter
    (fun scenario ->
      let t = run_scenario ~trials scenario in
      let consistent =
        float_of_int (t.ok + t.rolled_back) /. float_of_int trials
      in
      worst := Float.min !worst consistent;
      transactional_rows :=
        json_of_tally ~trials scenario t :: !transactional_rows;
      let mean_latency =
        if t.ok = 0 then "-"
        else Printf.sprintf "%10.2f vt" (t.latency_sum /. float_of_int t.ok)
      in
      Printf.printf "%-24s %6d %9d %13d %10.0f%% %13s\n" scenario.sc_name t.ok
        t.rolled_back t.inconsistent (100.0 *. consistent) mean_latency)
    scenarios;
  Printf.printf "%s\n" (String.make 80 '-');
  Printf.printf "worst-case consistency: %.0f%% (threshold 95%%)\n"
    (100.0 *. !worst);
  print_newline ();
  print_endline "==============================================================";
  print_endline "Chaos: exactly-once replace over reliable routes";
  print_endline
    (Printf.sprintf
       "%d seed(s) per cell; loss swept 0-20%%; every trial must complete \
        with an exactly-once tap history"
       (List.length seeds));
  print_endline "==============================================================";
  Printf.printf "%-20s %8s %9s %12s %9s %13s\n" "scenario" "loss" "complete"
    "exactly-once" "retx" "mean latency";
  Printf.printf "%s\n" (String.make 80 '-');
  let sweep_rows = ref [] in
  let sweep_failures = ref 0 in
  List.iter
    (fun scenario ->
      List.iter
        (fun loss ->
          let row = run_sweep_cell scenario ~loss ~seeds in
          sweep_rows := row :: !sweep_rows;
          if
            row.row_completed < row.row_trials
            || row.row_exactly_once < row.row_trials
          then incr sweep_failures;
          let mean_latency =
            if row.row_completed = 0 then "-"
            else
              Printf.sprintf "%10.2f vt"
                (row.row_latency_sum /. float_of_int row.row_completed)
          in
          Printf.printf "%-20s %7.0f%% %5d/%-3d %8d/%-3d %9d %13s\n"
            scenario.sw_name (100.0 *. loss) row.row_completed row.row_trials
            row.row_exactly_once row.row_trials row.row_retx mean_latency)
        sweep_losses)
    sweep_scenarios;
  Printf.printf "%s\n" (String.make 80 '-');
  Printf.printf "sweep cells with any failure: %d (threshold 0)\n"
    !sweep_failures;
  let json =
    Json_out.(
      obj
        [ ("suite", str "chaos");
          ("quick", bool quick);
          ("transactional_trials", int trials);
          ("transactional", arr (List.rev !transactional_rows));
          ("sweep_seeds", int (List.length seeds));
          ("reliable_sweep", arr (List.rev_map json_of_sweep_row !sweep_rows))
        ])
  in
  Json_out.write
    (if quick then "BENCH_chaos_quick.json" else "BENCH_chaos.json")
    json;
  if !worst < 0.95 || !sweep_failures > 0 then exit 1
