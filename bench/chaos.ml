(* Chaos suite: reconfiguration under injected faults.

   Each trial deploys the token ring, installs a seeded fault plan
   (uniform message loss, optionally a host crash in the middle of the
   replacement window), lets the ring run, then performs a transactional
   [replace] of member [c] with a deadline and one retry. A trial is
   {e consistent} when either the replacement completed (the clone is
   live and every route endpoint resolves to an instance) or it rolled
   back and the route set and instance roster equal the pre-script
   snapshot. Run with: dune exec bench/main.exe -- chaos *)

module Bus = Dr_bus.Bus
module Faults = Dr_bus.Faults
module Script = Dr_reconfig.Script
module Ring = Dr_workloads.Ring

type scenario = {
  sc_name : string;
  sc_loss : float;
  sc_host_crash : (string * float) option;
  sc_recover : float option;
}

type tally = {
  mutable ok : int;  (* replacement completed *)
  mutable rolled_back : int;  (* failed but restored the old config *)
  mutable inconsistent : int;  (* failed AND left the config damaged *)
  mutable latency_sum : float;  (* virtual time, completed trials only *)
}

let snapshot bus =
  let routes =
    List.sort compare
      (List.map
         (fun ((src, dst) : Bus.endpoint * Bus.endpoint) ->
           (fst src, snd src, fst dst, snd dst))
         (Bus.all_routes bus))
  in
  let roster = List.sort String.compare (Bus.instances bus) in
  (routes, roster)

let fully_routed bus =
  let live = Bus.instances bus in
  List.for_all
    (fun ((src, dst) : Bus.endpoint * Bus.endpoint) ->
      List.mem (fst src) live && List.mem (fst dst) live)
    (Bus.all_routes bus)

let run_trial scenario ~seed =
  let system = Ring.load () in
  let plan =
    Ring.chaos_plan ~loss:scenario.sc_loss ?host_crash:scenario.sc_host_crash
      ?host_recover:scenario.sc_recover ()
  in
  let bus = Ring.start_chaos ~seed ~plan system in
  Bus.run ~until:8.0 bus;
  let before = snapshot bus in
  let started = Bus.now bus in
  let outcome =
    Script.run_sync bus (fun ~on_done ->
        Script.replace bus ~instance:"c" ~new_instance:"c2" ~deadline:25.0
          ~retry:{ Script.attempts = 2; backoff = 5.0; alt_hosts = [ "hostA" ] }
          ~on_done ())
  in
  let latency = Bus.now bus -. started in
  match outcome with
  | Ok _ -> (`Ok latency, bus)
  | Error _ ->
    if snapshot bus = before then (`Rolled_back, bus)
    else (`Inconsistent, bus)

let run_scenario ?(trials = 40) scenario =
  let t = { ok = 0; rolled_back = 0; inconsistent = 0; latency_sum = 0.0 } in
  for seed = 1 to trials do
    let verdict, bus = run_trial scenario ~seed in
    (match verdict with
    | `Ok latency ->
      t.ok <- t.ok + 1;
      t.latency_sum <- t.latency_sum +. latency
    | `Rolled_back -> t.rolled_back <- t.rolled_back + 1
    | `Inconsistent -> t.inconsistent <- t.inconsistent + 1);
    (* a completed replacement must also leave the graph fully routed *)
    if not (fully_routed bus) then begin
      t.inconsistent <- t.inconsistent + 1;
      Printf.printf "  !! seed %d left a dangling route\n" seed
    end
  done;
  t

let scenarios =
  [ { sc_name = "fault-free"; sc_loss = 0.0; sc_host_crash = None;
      sc_recover = None };
    { sc_name = "loss 2%"; sc_loss = 0.02; sc_host_crash = None;
      sc_recover = None };
    { sc_name = "loss 5%"; sc_loss = 0.05; sc_host_crash = None;
      sc_recover = None };
    { sc_name = "loss 10%"; sc_loss = 0.10; sc_host_crash = None;
      sc_recover = None };
    { sc_name = "loss 5% + hostB crash"; sc_loss = 0.05;
      sc_host_crash = Some ("hostB", 8.5); sc_recover = None };
    { sc_name = "loss 5% + crash/recover"; sc_loss = 0.05;
      sc_host_crash = Some ("hostB", 8.5); sc_recover = Some 12.0 } ]

let all ?(trials = 40) () =
  print_newline ();
  print_endline "==============================================================";
  print_endline "Chaos: transactional replace under injected faults";
  print_endline
    (Printf.sprintf
       "%d seeded trials per scenario; replace c -> c2, deadline 25, 1 retry"
       trials);
  print_endline "==============================================================";
  Printf.printf "%-24s %6s %9s %13s %11s %13s\n" "scenario" "ok" "rollback"
    "inconsistent" "consistent" "mean latency";
  Printf.printf "%s\n" (String.make 80 '-');
  let worst = ref 1.0 in
  List.iter
    (fun scenario ->
      let t = run_scenario ~trials scenario in
      let consistent =
        float_of_int (t.ok + t.rolled_back) /. float_of_int trials
      in
      worst := Float.min !worst consistent;
      let mean_latency =
        if t.ok = 0 then "-"
        else Printf.sprintf "%10.2f vt" (t.latency_sum /. float_of_int t.ok)
      in
      Printf.printf "%-24s %6d %9d %13d %10.0f%% %13s\n" scenario.sc_name t.ok
        t.rolled_back t.inconsistent (100.0 *. consistent) mean_latency)
    scenarios;
  Printf.printf "%s\n" (String.make 80 '-');
  Printf.printf "worst-case consistency: %.0f%% (threshold 95%%)\n"
    (100.0 *. !worst);
  if !worst < 0.95 then exit 1
