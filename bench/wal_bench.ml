(* WAL suite: durable control log + crash recovery.

   Part 1 (crash sweep) replays the transactional replacement of ring
   member [c] with a durable control log attached and crashes the
   controller at EVERY control-log append index: a dry run counts the
   appends A a scenario performs, then one trial per index 1..A arms
   [ctlcrash@N], lets the controller die, discards its unsynced storage
   tail, reopens the log (torn-tail recovery path) and runs
   [Recovery.replay]. A trial is consistent when the fleet ends either
   fully reconfigured or byte-identically rolled back to the pre-script
   snapshot (for the double-replace scenario, any committed prefix of
   the two scripts). The gate is 100% across every scenario x loss cell.

   Part 2 (append) measures raw append throughput on both storage
   backends across fsync batching levels (sync_every 1/8/64).

   Part 3 (recovery time) measures the wall-clock cost of reopening the
   log and replaying an in-flight script as a function of journal depth
   (2..128 entries), with a budget gate on the deepest point.

   Everything is summarised in BENCH_wal.json.
   Run with: dune exec bench/main.exe -- wal [--quick] *)

module Bus = Dr_bus.Bus
module Faults = Dr_bus.Faults
module Script = Dr_reconfig.Script
module Journal = Dr_reconfig.Journal
module Recovery = Dr_reconfig.Recovery
module Storage = Dr_wal.Storage
module Wal = Dr_wal.Wal
module Ring = Dr_workloads.Ring

let ok_exn = function Ok v -> v | Error e -> failwith e

(* ------------------------------------------------------------ tmpdirs *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_tmpdir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "drwal-bench-%d-%06x" (Unix.getpid ())
         (Random.int 0xFFFFFF))
  in
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* -------------------------------------------------------- crash sweep *)

type scenario = {
  sc_name : string;
  sc_dup : float;
  sc_jitter : float;
  sc_double : bool;  (* replace c -> c2, then b -> b2 *)
  sc_deadline : float;
}

let scenarios =
  [ { sc_name = "replace"; sc_dup = 0.0; sc_jitter = 0.0; sc_double = false;
      sc_deadline = 25.0 };
    { sc_name = "replace + dup/jitter"; sc_dup = 0.10; sc_jitter = 0.5;
      sc_double = false; sc_deadline = 25.0 };
    { sc_name = "double replace"; sc_dup = 0.0; sc_jitter = 0.0;
      sc_double = true; sc_deadline = 25.0 };
    (* deadline expires before the target divulges, so the script always
       rolls back live — crash indices then land on the Abort and
       Undo_done appends and recovery must RESUME a half-done rollback *)
    { sc_name = "rollback (deadline)"; sc_dup = 0.0; sc_jitter = 0.0;
      sc_double = false; sc_deadline = 0.001 } ]

let snapshot bus =
  let routes =
    List.sort compare
      (List.map
         (fun ((src, dst) : Bus.endpoint * Bus.endpoint) ->
           (fst src, snd src, fst dst, snd dst))
         (Bus.all_routes bus))
  in
  let roster = List.sort String.compare (Bus.instances bus) in
  (routes, roster)

let fully_routed bus =
  let live = Bus.instances bus in
  List.for_all
    (fun ((src, dst) : Bus.endpoint * Bus.endpoint) ->
      List.mem (fst src) live && List.mem (fst dst) live)
    (Bus.all_routes bus)

let replaced bus ~old_i ~new_i =
  let live = Bus.instances bus in
  List.mem new_i live && not (List.mem old_i live)

let retry = { Script.attempts = 2; backoff = 5.0; alt_hosts = [ "hostA" ] }

let replace_sync bus ~deadline ~instance ~new_instance =
  Script.run_sync bus (fun ~on_done ->
      Script.replace bus ~instance ~new_instance ~deadline ~retry ~on_done ())

(* One trial. [ctl_crash = None] is the dry run: it returns the total
   control-log append count so the sweep can aim a crash at every
   index. *)
let run_trial scenario ~loss ~seed ~ctl_crash =
  let system = Ring.load () in
  let bus = Ring.start system in
  let mem = Storage.memory () in
  let wal = ok_exn (Wal.create (Storage.storage_of_mem mem)) in
  Bus.set_wal bus wal;
  let rules = [ Faults.rule ~loss ~dup:scenario.sc_dup () ] in
  Faults.install bus ~seed
    (Faults.plan ~rules ~jitter:scenario.sc_jitter ?ctl_crash ());
  Bus.run ~until:8.0 bus;
  let before = snapshot bus in
  let deadline = scenario.sc_deadline in
  let first = replace_sync bus ~deadline ~instance:"c" ~new_instance:"c2" in
  let second =
    if scenario.sc_double && Result.is_ok first && not (Bus.controller_down bus)
    then Some (replace_sync bus ~deadline ~instance:"b" ~new_instance:"b2")
    else None
  in
  let crashed = Bus.controller_down bus in
  let recovery =
    if crashed then begin
      (* the controller's memory is gone: unsynced storage tail too *)
      Storage.crash mem;
      let wal = ok_exn (Wal.create (Storage.storage_of_mem mem)) in
      Bus.set_wal bus wal;
      match Recovery.replay bus with
      | Error e -> Some (Error e)
      | Ok report ->
        Bus.run ~until:(Bus.now bus +. 5.0) bus;
        Some (Ok report)
    end
    else None
  in
  let consistent =
    match recovery with
    | Some (Error _) -> false
    | _ ->
      (* legal end states: untouched, first replacement committed (and
         for the double scenario optionally the second too) — anything
         else means a script half-applied *)
      let back_to_start = snapshot bus = before in
      let first_done =
        replaced bus ~old_i:"c" ~new_i:"c2" && fully_routed bus
      in
      let second_done =
        replaced bus ~old_i:"b" ~new_i:"b2" && fully_routed bus
      in
      let second_untouched = not (replaced bus ~old_i:"b" ~new_i:"b2") in
      back_to_start
      || (first_done && (second_untouched || second_done))
  in
  ignore second;
  (consistent, crashed, Bus.ctl_appends bus, recovery)

type sweep_row = {
  row_scenario : string;
  row_loss : float;
  row_appends : int;  (* control-log appends in the dry run *)
  row_trials : int;  (* crash-at-index trials (= appends) *)
  row_consistent : int;
  row_resumed : int;  (* recoveries that resumed a mid-flight rollback *)
}

let run_sweep_cell scenario ~loss ~seed =
  let dry_ok, dry_crashed, appends, _ =
    run_trial scenario ~loss ~seed ~ctl_crash:None
  in
  assert (not dry_crashed);
  if not dry_ok then
    Printf.printf "  !! dry run inconsistent (%s, loss %.0f%%, seed %d)\n"
      scenario.sc_name (100.0 *. loss) seed;
  let consistent = ref (if dry_ok then 0 else -1) in
  let resumed = ref 0 in
  for n = 1 to appends do
    let ok, crashed, _, recovery =
      run_trial scenario ~loss ~seed ~ctl_crash:(Some n)
    in
    assert crashed;
    if ok then incr consistent
    else
      Printf.printf "  !! inconsistent: %s, loss %.0f%%, seed %d, crash@%d%s\n"
        scenario.sc_name (100.0 *. loss) seed n
        (match recovery with
        | Some (Error e) -> " (recovery failed: " ^ e ^ ")"
        | _ -> "");
    match recovery with
    | Some (Ok r) when r.Recovery.rp_resumed > 0 -> incr resumed
    | _ -> ()
  done;
  { row_scenario = scenario.sc_name;
    row_loss = loss;
    row_appends = appends;
    row_trials = appends;
    row_consistent = max 0 !consistent;
    row_resumed = !resumed }

(* --------------------------------------------------- append throughput *)

type append_row = {
  ap_backend : string;
  ap_sync_every : int;
  ap_records : int;
  ap_seconds : float;
  ap_syncs : int;
}

let append_run storage ~sync_every ~records =
  let config = { Wal.default_config with sync_every } in
  let wal = ok_exn (Wal.create ~config storage) in
  let payload = Bytes.make 128 'x' in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to records do
    ignore (Wal.append wal ~kind:2 payload : int)
  done;
  Wal.sync wal;
  let dt = Unix.gettimeofday () -. t0 in
  (dt, Wal.syncs wal)

let run_append ~quick =
  let records = if quick then 2_000 else 20_000 in
  let levels = [ 1; 8; 64 ] in
  let mem_rows =
    List.map
      (fun sync_every ->
        let storage = Storage.storage_of_mem (Storage.memory ()) in
        let dt, syncs = append_run storage ~sync_every ~records in
        { ap_backend = "memory"; ap_sync_every = sync_every;
          ap_records = records; ap_seconds = dt; ap_syncs = syncs })
      levels
  in
  let file_rows =
    List.map
      (fun sync_every ->
        with_tmpdir (fun dir ->
            let dt, syncs =
              append_run (Storage.file ~dir) ~sync_every ~records
            in
            { ap_backend = "file"; ap_sync_every = sync_every;
              ap_records = records; ap_seconds = dt; ap_syncs = syncs }))
      levels
  in
  mem_rows @ file_rows

(* ------------------------------------------------ recovery vs depth *)

type recovery_row = {
  rc_depth : int;
  rc_records : int;  (* live records replayed *)
  rc_seconds : float;  (* mean reopen + replay time *)
}

(* Leave a [depth]-entry script in flight on a fresh log, then measure
   reopening the log and replaying (which rolls the script back). *)
let recovery_run ~depth ~trials =
  let total = ref 0.0 in
  let records = ref 0 in
  for _ = 1 to trials do
    let bus = Ring.start (Ring.load ()) in
    Bus.run ~until:2.0 bus;
    let mem = Storage.memory () in
    let wal = ok_exn (Wal.create (Storage.storage_of_mem mem)) in
    Bus.set_wal bus wal;
    let j = Journal.create bus ~label:(Printf.sprintf "depth-%d" depth) in
    for i = 1 to depth do
      let iface = Printf.sprintf "wal%d" i in
      Journal.add_route j ~src:("a", iface) ~dst:("b", iface)
    done;
    (* the controller dies here: no commit, no abort *)
    Storage.crash mem;
    let t0 = Unix.gettimeofday () in
    let wal = ok_exn (Wal.create (Storage.storage_of_mem mem)) in
    Bus.set_wal bus wal;
    records := List.length (Wal.records wal);
    (match Recovery.replay bus with
    | Ok r -> assert (r.Recovery.rp_rolled_back = 1)
    | Error e -> failwith e);
    total := !total +. (Unix.gettimeofday () -. t0)
  done;
  { rc_depth = depth;
    rc_records = !records;
    rc_seconds = !total /. float_of_int trials }

(* ----------------------------------------------------------------- main *)

let json_of_sweep row =
  Json_out.(
    obj
      [ ("scenario", str row.row_scenario);
        ("loss", float row.row_loss);
        ("appends", int row.row_appends);
        ("crash_trials", int row.row_trials);
        ("consistent", int row.row_consistent);
        ("resumed_rollbacks", int row.row_resumed) ])

let json_of_append row =
  Json_out.(
    obj
      [ ("backend", str row.ap_backend);
        ("sync_every", int row.ap_sync_every);
        ("records", int row.ap_records);
        ("seconds", float row.ap_seconds);
        ("syncs", int row.ap_syncs);
        ( "records_per_sec",
          float (float_of_int row.ap_records /. row.ap_seconds) ) ])

let json_of_recovery row =
  Json_out.(
    obj
      [ ("depth", int row.rc_depth);
        ("records", int row.rc_records);
        ("mean_seconds", float row.rc_seconds) ])

(* wall-clock budget for reopening + replaying the deepest journal *)
let recovery_budget_s = 0.25

let all ?(quick = false) () =
  Random.self_init ();
  let losses = if quick then [ 0.0; 0.20 ] else [ 0.0; 0.10; 0.20 ] in
  print_newline ();
  print_endline "==============================================================";
  print_endline "WAL: controller crash at every control-log append index";
  print_endline
    "dry run counts appends A; one recovery trial per index 1..A per cell";
  print_endline "==============================================================";
  Printf.printf "%-22s %6s %9s %12s %9s\n" "scenario" "loss" "appends"
    "consistent" "resumed";
  Printf.printf "%s\n" (String.make 64 '-');
  let sweep_rows = ref [] in
  let sweep_failures = ref 0 in
  List.iter
    (fun scenario ->
      List.iter
        (fun loss ->
          let row = run_sweep_cell scenario ~loss ~seed:1 in
          sweep_rows := row :: !sweep_rows;
          if row.row_consistent < row.row_trials then incr sweep_failures;
          Printf.printf "%-22s %5.0f%% %9d %6d/%-5d %9d\n" row.row_scenario
            (100.0 *. loss) row.row_appends row.row_consistent row.row_trials
            row.row_resumed)
        losses)
    scenarios;
  Printf.printf "%s\n" (String.make 64 '-');
  Printf.printf "cells with any inconsistent trial: %d (threshold 0)\n"
    !sweep_failures;
  print_newline ();
  print_endline "==============================================================";
  print_endline "WAL: append throughput (group commit)";
  print_endline "==============================================================";
  Printf.printf "%-8s %12s %9s %9s %14s\n" "backend" "sync_every" "records"
    "syncs" "records/sec";
  Printf.printf "%s\n" (String.make 58 '-');
  let append_rows = run_append ~quick in
  List.iter
    (fun r ->
      Printf.printf "%-8s %12d %9d %9d %14.0f\n" r.ap_backend r.ap_sync_every
        r.ap_records r.ap_syncs
        (float_of_int r.ap_records /. r.ap_seconds))
    append_rows;
  print_newline ();
  print_endline "==============================================================";
  print_endline "WAL: recovery time vs journal depth";
  print_endline "==============================================================";
  Printf.printf "%-8s %9s %16s\n" "depth" "records" "reopen+replay";
  Printf.printf "%s\n" (String.make 36 '-');
  let depths = [ 2; 8; 32; 128 ] in
  let trials = if quick then 3 else 10 in
  let recovery_rows = List.map (fun depth -> recovery_run ~depth ~trials) depths in
  List.iter
    (fun r ->
      Printf.printf "%-8d %9d %13.2f ms\n" r.rc_depth r.rc_records
        (1000.0 *. r.rc_seconds))
    recovery_rows;
  let deepest = List.nth recovery_rows (List.length recovery_rows - 1) in
  Printf.printf "%s\n" (String.make 36 '-');
  Printf.printf "depth-%d recovery: %.2f ms (budget %.0f ms)\n"
    deepest.rc_depth
    (1000.0 *. deepest.rc_seconds)
    (1000.0 *. recovery_budget_s);
  let budget_ok = deepest.rc_seconds <= recovery_budget_s in
  let json =
    Json_out.(
      obj
        [ ("suite", str "wal");
          ("quick", bool quick);
          ("crash_sweep", arr (List.rev_map json_of_sweep !sweep_rows));
          ("sweep_cells_failed", int !sweep_failures);
          ("append", arr (List.map json_of_append append_rows));
          ("recovery", arr (List.map json_of_recovery recovery_rows));
          ("recovery_budget_seconds", float recovery_budget_s);
          ("recovery_budget_ok", bool budget_ok) ])
  in
  Json_out.write (if quick then "BENCH_wal_quick.json" else "BENCH_wal.json") json;
  if !sweep_failures > 0 || not budget_ok then exit 1
