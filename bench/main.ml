(* Benchmark harness.

   Part 1 regenerates every paper artifact (F1–F8) and measures every
   quantitative claim of the Discussion and baseline comparison (D1–D8)
   plus three ablations (A1–A3) in deterministic virtual time — see
   Tables.

   Part 2 is a Bechamel wall-clock suite with one Test.make per
   table/figure, timing the core operation behind each experiment on the
   real OCaml runtime.

   Part 3 (Scaling) drives an N-member ring workload for a fixed event
   budget at N = 10/100/1000 instances and reports wall-clock
   deliveries/sec — the bus hot-path scaling experiment of
   EXPERIMENTS.md.

   Part 4 (Chaos) measures reconfiguration success rate and completion
   latency under seeded fault injection (message loss, host crashes) —
   the transactional-rollback experiment of EXPERIMENTS.md — plus an
   exactly-once sweep with the reliable delivery layer enabled (loss
   0-20%, six fault scenarios); emits BENCH_chaos.json.

   Part 5 (Interp) compares the resolved slot-indexed engine against
   the original AST-walking engine (instrs/sec on the D1 hot loop,
   depth-64 capture/restore) and emits BENCH_interp.json.

   Part 6 (Disruption) sweeps AR-stack depth x payload on a cross-
   architecture migration and reads the signal/drain/capture/translate/
   restore decomposition out of the metrics span tree; emits
   BENCH_disruption.json.

   Run with: dune exec bench/main.exe             (tables + micro)
             dune exec bench/main.exe -- tables   (virtual-time tables only)
             dune exec bench/main.exe -- micro    (wall-clock only)
             dune exec bench/main.exe -- scaling  (bus scaling suite)
             dune exec bench/main.exe -- chaos    (fault-injection suite)
             dune exec bench/main.exe -- interp   (engine comparison)
             dune exec bench/main.exe -- disruption (window decomposition)
             dune exec bench/main.exe -- wal       (durable-log crash sweep)
             dune exec bench/main.exe -- rolling  (rolling-replacement suite)

   Part 7 (WAL) crashes the controller at every control-log append
   index of a transactional replace (x scenarios x loss rates), replays
   the log, and gates on 100% post-recovery consistency; it also
   measures append throughput per backend/sync batching and recovery
   time vs journal depth; emits BENCH_wal.json.

   Part 8 (Rolling) runs autonomous rolling-replacement waves over a
   replica group under live open-loop traffic, sweeping group size x
   request rate x fault plan (loss 0-20%, a mid-wave replica kill, a
   deliberately-bad canary build, controller crashes mid-wave), and
   gates on exactly-once-or-shed accounting, bad-canary detection and
   post-crash recovery; emits BENCH_rolling.json.

   "scaling", "chaos", "interp", "disruption", "wal" and "rolling"
   accept --quick (fewer trials/seeds, CI smoke); quick runs write
   their artifacts as BENCH_*_quick.json so a committed full artifact
   is never clobbered by a smoke run. All suites emit machine-readable
   BENCH_*.json artifacts next to bench_output.txt. *)

open Bechamel
open Toolkit

module Bus = Dr_bus.Bus
module Machine = Dr_interp.Machine
module I = Dr_transform.Instrument
module Synthetic = Dr_workloads.Synthetic
module Monitor = Dr_workloads.Monitor

let prepare_exn program points =
  match I.prepare program ~points with
  | Ok prepared -> prepared
  | Error e -> failwith e

let null_io = Dr_interp.Io_intf.null ()

let standalone program =
  let divulged = ref [] in
  let io = { null_io with io_encode = (fun image -> divulged := image :: !divulged) } in
  (Machine.create ~io program, divulged)

(* Pre-built inputs shared by the micro-benchmarks (constructed once). *)

let monitor_compute = Dr_lang.Parser.parse_program Monitor.compute_source

let monitor_points = [ { I.pt_proc = "compute"; pt_label = "R"; pt_vars = None } ]

let prepared_hotloop =
  (prepare_exn (Synthetic.hotloop ~rounds:20 ~inner:20)
     (Synthetic.hotloop_points `Outer))
    .I
    .prepared_program

let hotloop_original = Synthetic.hotloop ~rounds:20 ~inner:20

let prepared_deeprec =
  (prepare_exn (Synthetic.deeprec ~depth:32) Synthetic.deeprec_points)
    .I
    .prepared_program

let deeprec_image =
  let m, divulged = standalone prepared_deeprec in
  Machine.run ~max_steps:10_000_000 m;
  Machine.deliver_signal m;
  Machine.set_ready m;
  Machine.run ~max_steps:10_000_000 m;
  List.hd !divulged

let deeprec_abstract = Dr_state.Codec.encode_abstract deeprec_image

let deeprec_native_le =
  Result.get_ok (Dr_state.Codec.Native.encode Dr_state.Arch.x86_64 deeprec_image)

let fig6_sample =
  Dr_lang.Parser.parse_program
    "module sample;\nproc c() { }\nproc a() { R1: skip; c(); }\nproc b() { R2: skip; }\nproc main() { a(); c(); b(); a(); }"

(* One Test.make per table/figure. *)

let test_fig1 =
  Test.make ~name:"fig1_monitor_migration"
    (Staged.stage (fun () ->
         let system = Monitor.load () in
         let bus = Monitor.start system in
         Bus.run ~until:12.0 bus;
         match
           Dynrecon.System.migrate bus ~instance:"compute" ~new_instance:"c2"
             ~new_host:"hostB"
         with
         | Ok _ -> ()
         | Error e -> failwith e))

let test_fig2 =
  Test.make ~name:"fig2_mil_parse_print"
    (Staged.stage (fun () ->
         let config = Dr_mil.Mil_parser.parse_config Monitor.mil in
         ignore (Dr_mil.Mil_pretty.config_to_string config)))

let test_fig4 =
  Test.make ~name:"fig4_transform_compute"
    (Staged.stage (fun () -> ignore (prepare_exn monitor_compute monitor_points)))

let test_fig5 =
  Test.make ~name:"fig5_rebind_batch"
    (Staged.stage (fun () ->
         let system = Monitor.load () in
         let bus = Monitor.start system in
         match Dr_reconfig.Primitives.obj_cap bus ~instance:"compute" with
         | Ok cap -> ignore cap
         | Error e -> failwith e))

let test_fig6 =
  Test.make ~name:"fig6_reconfig_graph"
    (Staged.stage (fun () ->
         ignore
           (Dr_analysis.Reconfig_graph.build fig6_sample
              ~points:[ ("a", "R1"); ("b", "R2") ])))

let test_fig78 =
  Test.make ~name:"fig7_fig8_emit_source"
    (Staged.stage
       (let prepared = prepare_exn monitor_compute monitor_points in
        fun () ->
          ignore (Dr_lang.Pretty.program_to_string prepared.I.prepared_program)))

let test_d1_original =
  Test.make ~name:"d1_hotloop_original"
    (Staged.stage (fun () ->
         let m = Machine.create ~io:null_io hotloop_original in
         Machine.run ~max_steps:10_000_000 m))

let test_d1_prepared =
  Test.make ~name:"d1_hotloop_prepared"
    (Staged.stage (fun () ->
         let m = Machine.create ~io:null_io prepared_hotloop in
         Machine.run ~max_steps:10_000_000 m))

let test_d2 =
  Test.make ~name:"d2_checkpoint_interval100"
    (Staged.stage (fun () ->
         let cp =
           Dr_baselines.Checkpoint.create ~interval:100 ~io:null_io
             hotloop_original
         in
         Dr_baselines.Checkpoint.run cp ~max_steps:10_000_000))

let test_d3 =
  Test.make ~name:"d3_signal_to_capture"
    (Staged.stage (fun () ->
         let m, divulged = standalone prepared_hotloop in
         Machine.run ~max_steps:200 m;
         Machine.deliver_signal m;
         Machine.run ~max_steps:10_000_000 m;
         ignore !divulged))

let test_d4_capture =
  Test.make ~name:"d4_capture_depth32"
    (Staged.stage (fun () ->
         let m, divulged = standalone prepared_deeprec in
         Machine.run ~max_steps:10_000_000 m;
         Machine.deliver_signal m;
         Machine.set_ready m;
         Machine.run ~max_steps:10_000_000 m;
         ignore !divulged))

let test_d4_restore =
  Test.make ~name:"d4_restore_depth32"
    (Staged.stage (fun () ->
         let clone, _ = standalone prepared_deeprec in
         Machine.feed_image clone deeprec_image;
         Machine.run ~max_steps:10_000_000 clone))

let test_d5 =
  Test.make ~name:"d5_proc_update_leaf"
    (Staged.stage (fun () ->
         let old_program = Synthetic.layered ~iterations:50 in
         let new_program = Synthetic.layered_variant ~iterations:50 ~change:`Leaf in
         let machine = Machine.create ~io:null_io old_program in
         let updater =
           Dr_baselines.Proc_update.create ~machine ~old_program ~new_program
         in
         ignore (Dr_baselines.Proc_update.run updater ~max_steps:10_000_000)))

let test_d7_encode =
  Test.make ~name:"d7_encode_abstract"
    (Staged.stage (fun () -> ignore (Dr_state.Codec.encode_abstract deeprec_image)))

let test_d7_decode =
  Test.make ~name:"d7_decode_abstract"
    (Staged.stage (fun () ->
         ignore (Dr_state.Codec.decode_abstract deeprec_abstract)))

let test_d7_translate =
  Test.make ~name:"d7_translate_le_to_be"
    (Staged.stage (fun () ->
         ignore
           (Dr_state.Codec.Native.translate ~src:Dr_state.Arch.x86_64
              ~dst:Dr_state.Arch.sparc32 deeprec_native_le)))

let test_d8_synthesize =
  Test.make ~name:"d8_synthesize_migration_program"
    (Staged.stage
       (let prepared =
          prepare_exn (Synthetic.deeprec ~depth:32) Synthetic.deeprec_points
        in
        fun () ->
          match
            Dr_baselines.Recompile.synthesize ~prepared ~image:deeprec_image
          with
          | Ok p -> ignore (Dr_interp.Lower.lower_program p)
          | Error e -> failwith e))

let test_lower =
  Test.make ~name:"interp_lower_program"
    (Staged.stage (fun () -> ignore (Dr_interp.Lower.lower_program monitor_compute)))

let micro_tests =
  Test.make_grouped ~name:"dynrecon"
    [ test_fig1; test_fig2; test_fig4; test_fig5; test_fig6; test_fig78;
      test_d1_original; test_d1_prepared; test_d2; test_d3; test_d4_capture;
      test_d4_restore; test_d5; test_d7_encode; test_d7_decode;
      test_d7_translate; test_d8_synthesize; test_lower ]

let run_micro () =
  print_newline ();
  print_endline "==============================================================";
  print_endline "Wall-clock micro-benchmarks (Bechamel, monotonic clock)";
  print_endline "==============================================================";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] micro_tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let nanos =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> est
        | _ -> Float.nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "-"
      in
      rows := (name, nanos, r2) :: !rows)
    results;
  let rows = List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !rows in
  Printf.printf "%-40s %16s  %6s\n" "benchmark" "time/run" "r²";
  Printf.printf "%s\n" (String.make 66 '-');
  List.iter
    (fun (name, nanos, r2) ->
      let time =
        if Float.is_nan nanos then "-"
        else if nanos > 1e9 then Printf.sprintf "%.2f s" (nanos /. 1e9)
        else if nanos > 1e6 then Printf.sprintf "%.2f ms" (nanos /. 1e6)
        else if nanos > 1e3 then Printf.sprintf "%.2f µs" (nanos /. 1e3)
        else Printf.sprintf "%.0f ns" nanos
      in
      Printf.printf "%-40s %16s  %6s\n" name time r2)
    rows

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let quick = Array.length Sys.argv > 2 && Sys.argv.(2) = "--quick" in
  if what = "tables" || what = "all" then Tables.all ();
  if what = "micro" || what = "all" then run_micro ();
  if what = "scaling" then Scaling.all ~quick ();
  if what = "chaos" then Chaos.all ~quick ();
  if what = "interp" then Interp_bench.all ~quick ();
  if what = "disruption" then Disruption.all ~quick ();
  if what = "wal" then Wal_bench.all ~quick ();
  if what = "rolling" then Rolling.all ~quick ();
  if what = "mc" then Mc.all ~quick ()
