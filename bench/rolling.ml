(* Rolling-replacement suite: autonomous waves under live traffic.

   Sweeps replica-group size x traffic rate x fault plan. Every trial
   deploys a Kvstore.Replica group, drives it with the seeded open-loop
   load generator, and runs a Rolling wave while the traffic flows:

   - clean and lossy cells (loss 0-20%, masked by the reliable layer on
     the reply routes) upgrade the whole group to the v2 build and must
     commit with every slot upgraded;
   - kill cells crash an old-generation member mid-wave; a supervisor
     restarts it fenced and the wave must still upgrade every slot
     exactly once;
   - bad-canary cells roll the group towards the deliberately-bad build:
     every attempted canary must be caught by the SLO gates and rolled
     back, and the wave must abort with the fleet on its original build;
   - ctlcrash cells kill the controller at a chosen control-log append
     index mid-wave; [Rolling.recover] must bring the roster back to a
     consistent state and traffic must keep flowing cleanly.

   The universal gate on every cell is the exactly-once-or-shed
   accounting identity: sent = answered + shed, nothing in flight,
   nothing duplicated. Summarised in BENCH_rolling.json
   (BENCH_rolling_quick.json with --quick).
   Run with: dune exec bench/main.exe -- rolling [--quick] *)

module Bus = Dr_bus.Bus
module Faults = Dr_bus.Faults
module Reliable = Dr_bus.Reliable
module Roll = Dr_reconfig.Rolling
module Supervisor = Dr_reconfig.Supervisor
module Recovery = Dr_reconfig.Recovery
module Storage = Dr_wal.Storage
module Wal = Dr_wal.Wal
module Kv = Dr_workloads.Kvstore

let ok_exn = function Ok v -> v | Error e -> failwith e

type fault =
  | Clean
  | Loss of float  (* reply-route message loss, reliable layer enabled *)
  | Kill  (* crash an old-generation replica mid-wave, supervised *)
  | Bad_canary  (* roll towards rstorebad: every canary must fail *)
  | Ctl_crash of int  (* controller dies at this control-log append *)

let fault_name = function
  | Clean -> "clean"
  | Loss p -> Printf.sprintf "loss %.0f%%" (100.0 *. p)
  | Kill -> "kill mid-wave"
  | Bad_canary -> "bad canary"
  | Ctl_crash n -> Printf.sprintf "ctlcrash@%d" n

type row = {
  r_fault : string;
  r_n : int;
  r_rate : float;
  r_sent : int;
  r_answered : int;
  r_shed : int;
  r_wrong : int;
  r_duplicated : int;
  r_inflight : int;
  r_committed : bool;
  r_rollbacks : int;  (* canary rollbacks across the wave *)
  r_restarts : int;  (* supervisor restarts (kill cells) *)
  r_crashed : bool;  (* the armed controller crash fired *)
  r_recovered : bool;  (* Rolling.recover succeeded, roster consistent *)
  r_ok : bool;
  r_detail : string;  (* first failed gate, "" when ok *)
}

(* The live instances serving [slot]: the original name, or a wave /
   rollback generation [slot@wid.gen]. A consistent roster has exactly
   one per slot. *)
let serving bus ~slot =
  let pfx = slot ^ "@" in
  let plen = String.length pfx in
  List.filter
    (fun inst ->
      inst = slot
      || (String.length inst >= plen && String.sub inst 0 plen = pfx))
    (Bus.instances bus)

let run_cell ~n ~rate ~fault ~seed =
  let system = Kv.Replica.load ~n in
  let bus = Kv.Replica.start ~n system in
  let mem = Storage.memory () in
  Bus.set_wal bus (ok_exn (Wal.create (Storage.storage_of_mem mem)));
  let group = Kv.Replica.group ~n in
  let roster = Hashtbl.create 8 in
  List.iter (fun (slot, inst) -> Hashtbl.replace roster slot inst) group;
  (* fault plane *)
  (match fault with
  | Clean | Bad_canary -> ()
  | Loss p ->
    Faults.install bus ~seed (Faults.plan ~rules:[ Faults.rule ~loss:p () ] ());
    (* replies ride routes and the loss hook; mask it end-to-end *)
    Reliable.enable_all (Reliable.attach bus)
  | Kill ->
    (* kill the LAST slot's original generation while the wave is still
       busy with the first: its old generation is live when this fires *)
    let victim = Kv.Replica.slot n in
    Faults.install bus ~seed
      (Faults.plan ~events:[ (13.0, Faults.Process_crash victim) ] ())
  | Ctl_crash i -> Faults.install bus ~seed (Faults.plan ~ctl_crash:i ()));
  let supervisor =
    match fault with
    | Kill -> Some (Supervisor.start bus ~watch:(List.map snd group) ())
    | _ -> None
  in
  let lg =
    Kv.Loadgen.start bus
      { Kv.Loadgen.default_conf with
        lc_rate = rate;
        lc_seed = seed;
        lc_duration = 500.0 }
      ~slots:group
  in
  Bus.run ~until:10.0 bus;
  let target = match fault with Bad_canary -> "rstorebad" | _ -> "rstorev2" in
  let cfg =
    { (Roll.default_config ~target) with
      rc_drain_timeout = 6.0;
      rc_canary_window = 8.0;
      rc_backoff = 1.0;
      rc_retries = (match fault with Bad_canary -> 2 | _ -> 3);
      (* under injected loss, retransmission tails are environment, not
         build quality — lifting the latency gate keeps the error-rate
         and shed gates in charge of the judgement *)
      rc_slo =
        (match fault with
        | Loss _ -> { (Roll.default_config ~target).rc_slo with slo_p99 = None }
        | _ -> (Roll.default_config ~target).rc_slo) }
  in
  let on_retarget ~slot ~instance =
    Hashtbl.replace roster slot instance;
    Kv.Loadgen.retarget lg ~slot ~instance
  in
  let wave = Roll.run bus cfg ~group ?supervisor ~on_retarget () in
  let crashed = Bus.controller_down bus in
  (* ctlcrash cells: the controller's memory is gone — discard the
     unsynced storage tail, reopen the log, recover, and point the load
     generator at whatever roster recovery settled on *)
  let recovered, roster_consistent =
    if not crashed then (false, true)
    else begin
      Storage.crash mem;
      Bus.set_wal bus (ok_exn (Wal.create (Storage.storage_of_mem mem)));
      match Roll.recover bus with
      | Error _ -> (false, false)
      | Ok (_report, _waves) ->
        let consistent = ref true in
        List.iter
          (fun (slot, _) ->
            match serving bus ~slot with
            | [ inst ] ->
              Hashtbl.replace roster slot inst;
              Kv.Loadgen.retarget lg ~slot ~instance:inst
            | _ -> consistent := false)
          group;
        (* the fleet must keep serving after recovery *)
        if !consistent then Bus.run ~until:(Bus.now bus +. 15.0) bus;
        (true, !consistent)
    end
  in
  Kv.Loadgen.stop lg;
  (* adaptive grace: lossy replies may need several retransmission
     rounds (rto 4.0 doubling to 16.0, so one chain can exceed any
     fixed window) — drive until the ledger closes, bounded *)
  Bus.run ~until:(Bus.now bus +. 40.0) bus;
  let grace_deadline = Bus.now bus +. 120.0 in
  while
    (Kv.Loadgen.stats lg).st_inflight > 0 && Bus.now bus < grace_deadline
  do
    Bus.run ~until:(Bus.now bus +. 10.0) bus
  done;
  let s = Kv.Loadgen.stats lg in
  let committed, rollbacks, outcomes_ok, any_rolled_back =
    match wave with
    | Error _ -> (false, 0, true, false)
    | Ok r ->
      ( r.Roll.rp_committed,
        List.fold_left
          (fun acc rr -> acc + rr.Roll.rr_rollbacks)
          0 r.Roll.rp_replicas,
        List.for_all
          (fun rr ->
            match rr.Roll.rr_outcome with
            | Roll.Upgraded _ -> fault <> Bad_canary
            | Roll.Rolled_back _ | Roll.Skipped -> fault = Bad_canary)
          r.Roll.rp_replicas,
        List.exists
          (fun rr ->
            match rr.Roll.rr_outcome with
            | Roll.Rolled_back _ -> true
            | _ -> false)
          r.Roll.rp_replicas )
  in
  let restarts =
    match supervisor with
    | None -> 0
    | Some sup -> List.length (Supervisor.restarts sup)
  in
  (* gates, most specific failure first *)
  let fail = ref "" in
  let gate name ok = if ok && !fail = "" then () else if !fail = "" then fail := name in
  gate "accounting" (s.st_sent = s.st_answered + s.st_shed && s.st_inflight = 0);
  gate "duplicates" (s.st_duplicated = 0 && s.st_stray = 0);
  (match fault with
  | Clean | Loss _ | Kill ->
    gate "not committed" committed;
    gate "wrong values" (s.st_wrong = 0);
    if fault = Kill then begin
      gate "no supervisor restart" (restarts >= 1);
      gate "victim not upgraded"
        (match serving bus ~slot:(Kv.Replica.slot n) with
        | [ inst ] -> Bus.instance_module bus ~instance:inst = Some "rstorev2"
        | _ -> false)
    end
  | Bad_canary ->
    gate "bad build committed" (not committed);
    gate "canary not detected" (any_rolled_back && outcomes_ok);
    gate "fleet not restored"
      (List.for_all
         (fun (slot, _) ->
           match serving bus ~slot with
           | [ inst ] -> Bus.instance_module bus ~instance:inst = Some "rstore"
           | _ -> false)
         group)
  | Ctl_crash _ ->
    if crashed then begin
      gate "wave not aborted by crash" (Result.is_error wave);
      gate "recovery failed" recovered;
      gate "roster inconsistent" roster_consistent;
      gate "wrong values" (s.st_wrong = 0)
    end
    else begin
      (* crash index beyond the wave's appends: behaves like clean *)
      gate "not committed" committed;
      gate "wrong values" (s.st_wrong = 0)
    end);
  { r_fault = fault_name fault;
    r_n = n;
    r_rate = rate;
    r_sent = s.st_sent;
    r_answered = s.st_answered;
    r_shed = s.st_shed;
    r_wrong = s.st_wrong;
    r_duplicated = s.st_duplicated;
    r_inflight = s.st_inflight;
    r_committed = committed;
    r_rollbacks = rollbacks;
    r_restarts = restarts;
    r_crashed = crashed;
    r_recovered = recovered;
    r_ok = !fail = "";
    r_detail = !fail }

let json_of_row r =
  Json_out.(
    obj
      [ ("fault", str r.r_fault);
        ("replicas", int r.r_n);
        ("rate", float r.r_rate);
        ("sent", int r.r_sent);
        ("answered", int r.r_answered);
        ("shed", int r.r_shed);
        ("wrong", int r.r_wrong);
        ("duplicated", int r.r_duplicated);
        ("inflight", int r.r_inflight);
        ("committed", bool r.r_committed);
        ("canary_rollbacks", int r.r_rollbacks);
        ("supervisor_restarts", int r.r_restarts);
        ("ctl_crashed", bool r.r_crashed);
        ("recovered", bool r.r_recovered);
        ("ok", bool r.r_ok);
        ("detail", str r.r_detail) ])

let all ?(quick = false) () =
  let cells =
    if quick then
      [ (3, 3.0, Clean); (3, 3.0, Loss 0.10); (3, 3.0, Kill);
        (3, 3.0, Bad_canary); (3, 3.0, Ctl_crash 6) ]
    else
      List.concat_map
        (fun n ->
          List.concat_map
            (fun rate ->
              List.map
                (fun fault -> (n, rate, fault))
                [ Clean; Loss 0.05; Loss 0.10; Loss 0.20 ])
            [ 3.0; 6.0 ])
        [ 3; 5 ]
      @ [ (3, 3.0, Kill); (5, 6.0, Kill);
          (3, 3.0, Bad_canary); (5, 6.0, Bad_canary);
          (3, 3.0, Ctl_crash 2); (3, 3.0, Ctl_crash 7);
          (3, 3.0, Ctl_crash 12) ]
  in
  print_newline ();
  print_endline "==============================================================";
  print_endline "Rolling: autonomous replacement waves under live traffic";
  print_endline
    "gate: sent = answered + shed, zero in flight, zero duplicated";
  print_endline "==============================================================";
  Printf.printf "%-14s %2s %5s %6s %9s %5s %6s %4s %5s  %s\n" "fault" "n"
    "rate" "sent" "answered" "shed" "wrong" "rb" "ok" "detail";
  Printf.printf "%s\n" (String.make 78 '-');
  let rows = ref [] in
  let failures = ref 0 in
  List.iteri
    (fun i (n, rate, fault) ->
      let row = run_cell ~n ~rate ~fault ~seed:(11 + i) in
      rows := row :: !rows;
      if not row.r_ok then incr failures;
      Printf.printf "%-14s %2d %5.1f %6d %9d %5d %6d %4d %5s  %s\n"
        row.r_fault row.r_n row.r_rate row.r_sent row.r_answered row.r_shed
        row.r_wrong row.r_rollbacks
        (if row.r_ok then "yes" else "NO")
        row.r_detail)
    cells;
  Printf.printf "%s\n" (String.make 78 '-');
  Printf.printf "cells failed: %d of %d (threshold 0)\n" !failures
    (List.length cells);
  let json =
    Json_out.(
      obj
        [ ("suite", str "rolling");
          ("quick", bool quick);
          ("cells", arr (List.rev_map json_of_row !rows));
          ("cells_failed", int !failures) ])
  in
  Json_out.write
    (if quick then "BENCH_rolling_quick.json" else "BENCH_rolling.json")
    json;
  if !failures > 0 then exit 1
