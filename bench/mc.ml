(* Model-checking bench tier: state/transition counts, DPOR reduction
   ratios, and the zero-violation gates for the checked configurations.

   Unlike the timing tiers this one is about coverage: it reports how
   large each configuration's reachable space is, how much of the naive
   enumeration the sleep-set and DPOR tiers shave off, and fails loudly
   if any monitor fires or if a configuration that is supposed to be
   exhaustively explorable gets cut by a bound.

   The three-mode comparison (the reduction-ratio denominator) runs the
   one-request workload: naive enumeration of the two-request one is out
   of reach (hours), which is itself the point of the ratio. The full
   run additionally explores the two-request acceptance configuration
   exhaustively under DPOR, plus the fault/crash/concurrent-script
   configurations. Quick mode (CI, ≤60s) skips the full-only rows; the
   committed BENCH_mc.json always comes from a full run. *)

module Explorer = Dr_mc.Explorer
module Configs = Dr_mc.Configs

type row = {
  row_config : string;
  row_mode : string;
  row_stats : Explorer.stats;
  row_violations : int;
  row_seconds : float;
}

let explore_row ~config_name cfg mode =
  let t0 = Unix.gettimeofday () in
  let r = Explorer.explore ~mode cfg in
  let dt = Unix.gettimeofday () -. t0 in
  List.iter
    (fun ((v : Dr_mc.Monitor.violation), sched) ->
      Printf.printf "  VIOLATION [%s] %s\n    repro: %s\n" v.v_monitor
        v.v_detail
        (String.concat " " (List.map Explorer.token_to_string sched)))
    r.Explorer.res_violations;
  { row_config = config_name;
    row_mode = Explorer.mode_name mode;
    row_stats = r.Explorer.res_stats;
    row_violations = List.length r.Explorer.res_violations;
    row_seconds = dt }

let print_rows rows =
  Printf.printf "%-28s %-6s %9s %11s %8s %7s %7s %6s %5s %8s\n" "config"
    "mode" "execs" "transitions" "states" "dedup" "sleep" "cuts" "viol"
    "time";
  Printf.printf "%s\n" (String.make 102 '-');
  List.iter
    (fun r ->
      let s = r.row_stats in
      Printf.printf "%-28s %-6s %9d %11d %8d %7d %7d %6d %5d %7.2fs%s\n"
        r.row_config r.row_mode s.Explorer.executions s.Explorer.transitions
        s.Explorer.states s.Explorer.dedup_cuts s.Explorer.sleep_prunes
        s.Explorer.depth_cuts r.row_violations r.row_seconds
        (if s.Explorer.capped then "  [CAPPED]" else ""))
    rows

let json_of_rows rows =
  Json_out.(
    arr
      (List.map
         (fun r ->
           let s = r.row_stats in
           obj
             [ ("config", str r.row_config);
               ("mode", str r.row_mode);
               ("executions", int s.Explorer.executions);
               ("transitions", int s.Explorer.transitions);
               ("states", int s.Explorer.states);
               ("dedup_cuts", int s.Explorer.dedup_cuts);
               ("sleep_prunes", int s.Explorer.sleep_prunes);
               ("depth_cuts", int s.Explorer.depth_cuts);
               ("frontier", int s.Explorer.frontier);
               ("capped", bool s.Explorer.capped);
               ("violations", int r.row_violations);
               ("seconds", float r.row_seconds) ])
         rows))

let find rows config mode =
  List.find_opt (fun r -> r.row_config = config && r.row_mode = mode) rows

let gate_failures rows =
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> fails := m :: !fails) fmt in
  List.iter
    (fun r ->
      if r.row_violations > 0 then
        fail "%s/%s: %d monitor violation(s)" r.row_config r.row_mode
          r.row_violations)
    rows;
  (* the acceptance configuration must be exhaustively explored *)
  (match find rows "single-replace" "dpor" with
  | None -> fail "single-replace/dpor row missing"
  | Some r ->
    let s = r.row_stats in
    if s.Explorer.capped || s.Explorer.depth_cuts > 0 || s.Explorer.frontier > 0
    then
      fail
        "single-replace/dpor not exhaustive: capped=%b depth_cuts=%d \
         frontier=%d"
        s.Explorer.capped s.Explorer.depth_cuts s.Explorer.frontier);
  (* so must the two-request variant, when the full run includes it *)
  (match find rows "single-replace-k2" "dpor" with
  | None -> ()
  | Some r ->
    let s = r.row_stats in
    if s.Explorer.capped || s.Explorer.depth_cuts > 0 || s.Explorer.frontier > 0
    then
      fail
        "single-replace-k2/dpor not exhaustive: capped=%b depth_cuts=%d \
         frontier=%d"
        s.Explorer.capped s.Explorer.depth_cuts s.Explorer.frontier);
  (* DPOR must actually reduce: >= 5x fewer transitions than naive *)
  (match (find rows "single-replace" "naive", find rows "single-replace" "dpor")
   with
  | Some n, Some d ->
    let ratio =
      float_of_int n.row_stats.Explorer.transitions
      /. float_of_int (max 1 d.row_stats.Explorer.transitions)
    in
    Printf.printf "\nDPOR reduction (single-replace): %.1fx transitions, %.1fx \
                   executions\n"
      ratio
      (float_of_int n.row_stats.Explorer.executions
      /. float_of_int (max 1 d.row_stats.Explorer.executions));
    if ratio < 5.0 then
      fail "DPOR reduction %.1fx < 5x on single-replace" ratio
  | _ -> fail "need both naive and dpor rows for single-replace");
  List.rev !fails

let all ~quick () =
  Printf.printf "== mc: systematic state-space exploration%s ==\n"
    (if quick then " (quick)" else "");
  let rows = ref [] in
  let add row = rows := row :: !rows in
  let base = Configs.single_replace ~k:1 () in
  add (explore_row ~config_name:"single-replace" base Explorer.Naive);
  add (explore_row ~config_name:"single-replace" base Explorer.Sleep);
  add (explore_row ~config_name:"single-replace" base Explorer.Dpor);
  add
    (explore_row ~config_name:"single-replace-faults"
       (Configs.single_replace ~k:1 ~fault_budget:1 ~depth:200 ())
       Explorer.Dpor);
  add
    (explore_row ~config_name:"single-replace-crash"
       (Configs.single_replace ~k:1 ~crash_budget:1 ~ctlcrash:true ~depth:200
          ())
       Explorer.Dpor);
  if not quick then begin
    add
      (explore_row ~config_name:"single-replace-k2"
         (Configs.single_replace ~k:2 ())
         Explorer.Dpor);
    add
      (explore_row ~config_name:"double-replace"
         (Configs.double_replace ~k:1 ())
         Explorer.Dpor);
    add
      (explore_row ~config_name:"detector-restart"
         (Configs.detector_restart ())
         Explorer.Dpor)
  end;
  let rows = List.rev !rows in
  print_rows rows;
  let fails = gate_failures rows in
  Json_out.write
    (if quick then "BENCH_mc_quick.json" else "BENCH_mc.json")
    (json_of_rows rows);
  if fails <> [] then begin
    List.iter (fun m -> Printf.printf "GATE FAIL: %s\n" m) fails;
    exit 1
  end
  else Printf.printf "all mc gates passed\n%!"
