(* Disruption-window benchmark: sweep AR-stack depth x per-frame payload
   on the deeprec_payload workload, migrate the instance off hostA both
   across architectures (hostB, sparc32) and within one (hostD, x86_64),
   with live pre-copy off and on, and read the phase decomposition back
   out of the span tree the reconfiguration script records — signal,
   drain, capture, translate, restore, all in virtual time. Emits
   BENCH_disruption.json (full sweep) or BENCH_disruption_quick.json
   (--quick) next to bench_output.txt.

   Run with: dune exec bench/main.exe -- disruption           (full sweep)
             dune exec bench/main.exe -- disruption --quick   (CI smoke)

   Every cell asserts the decomposition identity: the phase durations
   must tile the root span exactly (total = signal + drain + capture +
   translate + restore), i.e. the observability plane accounts for the
   whole window with no gap and no overlap. Pre-copy adds only
   zero-width markers, so the identity holds in every mode.

   Gates (non-zero exit on failure):
     full  — at depth 128 / payload 64, pre-copy must cut the window by
             at least 2x against both destinations
     quick — pre-copy must not widen the window (lenient CI smoke) *)

module Bus = Dr_bus.Bus
module Script = Dr_reconfig.Script
module Metrics = Dr_obs.Metrics
module Synthetic = Dr_workloads.Synthetic
module I = Dr_transform.Instrument

(* Monitor's hosts plus a second x86_64 host, so the sweep has a
   same-architecture destination where delta images can apply. *)
let hosts =
  Dr_workloads.Monitor.hosts
  @ [ { Bus.host_name = "hostD"; arch = Dr_state.Arch.x86_64 } ]

type cell = {
  c_depth : int;
  c_payload : int;
  c_dst : string;      (* destination host *)
  c_precopy : bool;
  c_bytes_in : int;    (* abstract image size leaving hostA *)
  c_bytes_out : int;   (* after translation / delta encoding *)
  c_signal : float;
  c_drain : float;
  c_capture : float;
  c_translate : float;
  c_restore : float;
  c_total : float;
  c_precopy_wait : float;   (* service time before the freeze signal *)
  c_delta_fallback : string;  (* "", or none/cross_arch/misaligned/... *)
  c_delta_slots : int;
  c_delta_bytes : int;
}

let dur name span =
  match Metrics.span_duration span with
  | Some d -> d
  | None -> failwith (Printf.sprintf "disruption: %s span still open" name)

let child root kind =
  match
    List.find_opt
      (fun s -> String.equal (Metrics.span_kind s) kind)
      (Metrics.span_children root)
  with
  | Some s -> s
  | None -> failwith (Printf.sprintf "disruption: no %s child span" kind)

let child_opt root kind =
  List.find_opt
    (fun s -> String.equal (Metrics.span_kind s) kind)
    (Metrics.span_children root)

let attr span name =
  match List.assoc_opt name (Metrics.span_attrs span) with
  | Some v -> v
  | None -> failwith (Printf.sprintf "disruption: span lacks %s attr" name)

let int_attr span name = int_of_string (attr span name)

let run_cell ~depth ~payload ~dst ~precopy =
  let registry = Metrics.create () in
  let bus = Bus.create ~hosts () in
  Bus.set_metrics bus registry;
  let prepared =
    match
      I.prepare
        (Synthetic.deeprec_payload ~depth ~payload)
        ~points:Synthetic.deeprec_points
    with
    | Ok prepared -> prepared.I.prepared_program
    | Error e -> failwith ("disruption: instrument: " ^ e)
  in
  (match Bus.register_program bus prepared with
  | Ok () -> ()
  | Error e -> failwith ("disruption: register: " ^ e));
  (match Bus.spawn bus ~instance:"w" ~module_name:"deeppay" ~host:"hostA" () with
  | Ok () -> ()
  | Error e -> failwith ("disruption: spawn: " ^ e));
  (* let it dive to the bottom loop before signalling *)
  Bus.run ~until:5.0 bus;
  (match
     Script.run_sync bus (fun ~on_done ->
         Script.migrate bus ~precopy ~instance:"w" ~new_instance:"w2"
           ~new_host:dst ~on_done ())
   with
  | Ok _ -> ()
  | Error e -> failwith ("disruption: migrate: " ^ e));
  (* run on so the clone finishes restoring (closes the lazy spans) *)
  Bus.run ~until:(Bus.now bus +. 10.0) bus;
  let root =
    match
      List.filter
        (fun s -> String.equal (Metrics.span_kind s) "migrate")
        (Metrics.roots registry)
    with
    | [ s ] -> s
    | roots ->
      failwith
        (Printf.sprintf "disruption: expected one migrate span, got %d"
           (List.length roots))
  in
  let translate = child root "translate" in
  let precopy_wait, delta_fallback, delta_slots, delta_bytes =
    match child_opt root "precopy", child_opt root "delta" with
    | Some pc, Some dc ->
      ( float_of_string (attr pc "wait"),
        attr dc "fallback",
        int_attr dc "delta_slots",
        int_attr dc "delta_bytes" )
    | _ when precopy -> failwith "disruption: precopy run lacks marker spans"
    | _ -> (0.0, "", 0, 0)
  in
  let cell =
    { c_depth = depth;
      c_payload = payload;
      c_dst = dst;
      c_precopy = precopy;
      c_bytes_in = int_attr translate "bytes_in";
      c_bytes_out = int_attr translate "bytes_out";
      c_signal = dur "signal" (child root "signal");
      c_drain = dur "drain" (child root "drain");
      c_capture = dur "capture" (child root "capture");
      c_translate = dur "translate" translate;
      c_restore = dur "restore" (child root "restore");
      c_total = dur "migrate" root;
      c_precopy_wait = precopy_wait;
      c_delta_fallback = delta_fallback;
      c_delta_slots = delta_slots;
      c_delta_bytes = delta_bytes }
  in
  let sum =
    cell.c_signal +. cell.c_drain +. cell.c_capture +. cell.c_translate
    +. cell.c_restore
  in
  if Float.abs (sum -. cell.c_total) > 1e-9 then
    failwith
      (Printf.sprintf
         "disruption: depth %d payload %d -> %s (precopy %b): phases sum to \
          %.9f but window is %.9f"
         depth payload dst precopy sum cell.c_total);
  cell

let cell_json c =
  Json_out.obj
    [ ("depth", Json_out.int c.c_depth);
      ("payload", Json_out.int c.c_payload);
      ("dst", Json_out.str c.c_dst);
      ("precopy", Json_out.bool c.c_precopy);
      ("bytes_in", Json_out.int c.c_bytes_in);
      ("bytes_out", Json_out.int c.c_bytes_out);
      ("signal", Json_out.float c.c_signal);
      ("drain", Json_out.float c.c_drain);
      ("capture", Json_out.float c.c_capture);
      ("translate", Json_out.float c.c_translate);
      ("restore", Json_out.float c.c_restore);
      ("total", Json_out.float c.c_total);
      ("precopy_wait", Json_out.float c.c_precopy_wait);
      ("delta_fallback", Json_out.str c.c_delta_fallback);
      ("delta_slots", Json_out.int c.c_delta_slots);
      ("delta_bytes", Json_out.int c.c_delta_bytes) ]

let all ?(quick = false) () =
  print_newline ();
  print_endline "==============================================================";
  print_endline "Disruption window vs AR-stack depth x payload (virtual time)";
  print_endline "  migrate hostA (x86_64) -> hostB (sparc32) / hostD (x86_64)";
  print_endline "  pre-copy off vs on, deeprec_payload workload";
  print_endline "==============================================================";
  let depths = if quick then [ 4; 16 ] else [ 2; 8; 32; 128 ] in
  let payloads = if quick then [ 0; 8 ] else [ 0; 16; 64 ] in
  let dsts = [ "hostB"; "hostD" ] in
  (* pre-copy off and on for each (depth, payload, destination) row *)
  let rows =
    List.concat_map
      (fun depth ->
        List.concat_map
          (fun payload ->
            List.map
              (fun dst ->
                let off = run_cell ~depth ~payload ~dst ~precopy:false in
                let on = run_cell ~depth ~payload ~dst ~precopy:true in
                (off, on))
              dsts)
          payloads)
      depths
  in
  Printf.printf "%6s %8s %6s %9s %10s %9s %8s %7s %11s\n" "depth" "payload"
    "dst" "off_total" "on_total" "speedup" "pc_wait" "d_slots" "fallback";
  Printf.printf "%s\n" (String.make 82 '-');
  List.iter
    (fun (off, on) ->
      let speedup =
        if on.c_total <= 0.0 then "     inf "
        else Printf.sprintf "%8.2fx" (off.c_total /. on.c_total)
      in
      Printf.printf "%6d %8d %6s %9.3f %10.3f %s %8.3f %7d %11s\n" off.c_depth
        off.c_payload off.c_dst off.c_total on.c_total speedup
        on.c_precopy_wait on.c_delta_slots on.c_delta_fallback)
    rows;
  print_endline
    "(each cell checked: phases tile the window — total = signal + drain";
  print_endline " + capture + translate + restore, exactly)";
  let cells = List.concat_map (fun (off, on) -> [ off; on ]) rows in
  let json =
    Json_out.obj
      [ ("suite", Json_out.str "disruption");
        ("quick", Json_out.bool quick);
        ("cells", Json_out.arr (List.map cell_json cells)) ]
  in
  Json_out.write
    (if quick then "BENCH_disruption_quick.json" else "BENCH_disruption.json")
    json;
  (* regression gates *)
  let failed = ref false in
  List.iter
    (fun (off, on) ->
      if quick then begin
        (* lenient smoke gate: pre-copy must never widen the window *)
        if on.c_total > off.c_total +. 1e-9 then begin
          Printf.printf
            "FAIL: depth %d payload %d -> %s: pre-copy widened the window \
             (%.3f > %.3f)\n"
            off.c_depth off.c_payload off.c_dst on.c_total off.c_total;
          failed := true
        end
      end
      else if off.c_depth = 128 && off.c_payload = 64 then
        (* headline criterion: >= 2x narrower at the deepest, fattest cell *)
        if on.c_total *. 2.0 > off.c_total then begin
          Printf.printf
            "FAIL: depth %d payload %d -> %s: pre-copy window %.3f is not \
             2x below %.3f\n"
            off.c_depth off.c_payload off.c_dst on.c_total off.c_total;
          failed := true
        end)
    rows;
  if !failed then exit 1
