(* Disruption-window benchmark: sweep AR-stack depth x per-frame payload
   on the deeprec_payload workload, migrate the instance across
   architectures (hostA x86_64 -> hostB sparc32), and read the phase
   decomposition back out of the span tree the reconfiguration script
   records — signal, drain, capture, translate, restore, all in virtual
   time. Emits BENCH_disruption.json next to bench_output.txt.

   Run with: dune exec bench/main.exe -- disruption           (full sweep)
             dune exec bench/main.exe -- disruption --quick   (CI smoke)

   Every cell asserts the decomposition identity: the phase durations
   must tile the root span exactly (total = signal + drain + capture +
   translate + restore), i.e. the observability plane accounts for the
   whole window with no gap and no overlap. *)

module Bus = Dr_bus.Bus
module Script = Dr_reconfig.Script
module Metrics = Dr_obs.Metrics
module Synthetic = Dr_workloads.Synthetic
module I = Dr_transform.Instrument

type cell = {
  c_depth : int;
  c_payload : int;
  c_bytes_in : int;   (* abstract image size leaving hostA *)
  c_bytes_out : int;  (* after translation for hostB *)
  c_signal : float;
  c_drain : float;
  c_capture : float;
  c_translate : float;
  c_restore : float;
  c_total : float;
}

let dur name span =
  match Metrics.span_duration span with
  | Some d -> d
  | None -> failwith (Printf.sprintf "disruption: %s span still open" name)

let child root kind =
  match
    List.find_opt
      (fun s -> String.equal (Metrics.span_kind s) kind)
      (Metrics.span_children root)
  with
  | Some s -> s
  | None -> failwith (Printf.sprintf "disruption: no %s child span" kind)

let int_attr span name =
  match List.assoc_opt name (Metrics.span_attrs span) with
  | Some v -> int_of_string v
  | None -> failwith (Printf.sprintf "disruption: span lacks %s attr" name)

let run_cell ~depth ~payload =
  let registry = Metrics.create () in
  let bus = Bus.create ~hosts:Dr_workloads.Monitor.hosts () in
  Bus.set_metrics bus registry;
  let prepared =
    match
      I.prepare
        (Synthetic.deeprec_payload ~depth ~payload)
        ~points:Synthetic.deeprec_points
    with
    | Ok prepared -> prepared.I.prepared_program
    | Error e -> failwith ("disruption: instrument: " ^ e)
  in
  (match Bus.register_program bus prepared with
  | Ok () -> ()
  | Error e -> failwith ("disruption: register: " ^ e));
  (match Bus.spawn bus ~instance:"w" ~module_name:"deeppay" ~host:"hostA" () with
  | Ok () -> ()
  | Error e -> failwith ("disruption: spawn: " ^ e));
  (* let it dive to the bottom loop before signalling *)
  Bus.run ~until:5.0 bus;
  (match
     Script.run_sync bus (fun ~on_done ->
         Script.migrate bus ~instance:"w" ~new_instance:"w2" ~new_host:"hostB"
           ~on_done ())
   with
  | Ok _ -> ()
  | Error e -> failwith ("disruption: migrate: " ^ e));
  (* run on so the clone finishes restoring (closes the lazy spans) *)
  Bus.run ~until:(Bus.now bus +. 10.0) bus;
  let root =
    match
      List.filter
        (fun s -> String.equal (Metrics.span_kind s) "migrate")
        (Metrics.roots registry)
    with
    | [ s ] -> s
    | roots ->
      failwith
        (Printf.sprintf "disruption: expected one migrate span, got %d"
           (List.length roots))
  in
  let translate = child root "translate" in
  let cell =
    { c_depth = depth;
      c_payload = payload;
      c_bytes_in = int_attr translate "bytes_in";
      c_bytes_out = int_attr translate "bytes_out";
      c_signal = dur "signal" (child root "signal");
      c_drain = dur "drain" (child root "drain");
      c_capture = dur "capture" (child root "capture");
      c_translate = dur "translate" translate;
      c_restore = dur "restore" (child root "restore");
      c_total = dur "migrate" root }
  in
  let sum =
    cell.c_signal +. cell.c_drain +. cell.c_capture +. cell.c_translate
    +. cell.c_restore
  in
  if Float.abs (sum -. cell.c_total) > 1e-9 then
    failwith
      (Printf.sprintf
         "disruption: depth %d payload %d: phases sum to %.9f but window is %.9f"
         depth payload sum cell.c_total);
  cell

let cell_json c =
  Json_out.obj
    [ ("depth", Json_out.int c.c_depth);
      ("payload", Json_out.int c.c_payload);
      ("bytes_in", Json_out.int c.c_bytes_in);
      ("bytes_out", Json_out.int c.c_bytes_out);
      ("signal", Json_out.float c.c_signal);
      ("drain", Json_out.float c.c_drain);
      ("capture", Json_out.float c.c_capture);
      ("translate", Json_out.float c.c_translate);
      ("restore", Json_out.float c.c_restore);
      ("total", Json_out.float c.c_total) ]

let all ?(quick = false) () =
  print_newline ();
  print_endline "==============================================================";
  print_endline "Disruption window vs AR-stack depth x payload (virtual time)";
  print_endline "  migrate hostA (x86_64) -> hostB (sparc32), deeprec_payload";
  print_endline "==============================================================";
  let depths = if quick then [ 4; 16 ] else [ 2; 8; 32; 128 ] in
  let payloads = if quick then [ 0; 8 ] else [ 0; 16; 64 ] in
  let cells =
    List.concat_map
      (fun depth ->
        List.map (fun payload -> run_cell ~depth ~payload) payloads)
      depths
  in
  Printf.printf "%6s %8s %9s %8s %8s %8s %8s %8s %8s\n" "depth" "payload"
    "bytes" "signal" "drain" "capture" "xlate" "restore" "total";
  Printf.printf "%s\n" (String.make 78 '-');
  List.iter
    (fun c ->
      Printf.printf "%6d %8d %9d %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n"
        c.c_depth c.c_payload c.c_bytes_in c.c_signal c.c_drain c.c_capture
        c.c_translate c.c_restore c.c_total)
    cells;
  print_endline
    "(each row checked: phases tile the window — total = signal + drain";
  print_endline " + capture + translate + restore, exactly)";
  let json =
    Json_out.obj
      [ ("suite", Json_out.str "disruption");
        ("quick", Json_out.bool quick);
        ("cells", Json_out.arr (List.map cell_json cells)) ]
  in
  Json_out.write "BENCH_disruption.json" json
